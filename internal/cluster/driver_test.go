package cluster

import (
	"sync"
	"testing"
	"time"

	"sailfish/internal/netpkt"
	"sailfish/internal/tables"
	"sailfish/internal/xgwh"
)

func TestDriverConcurrentForwarding(t *testing.T) {
	r := NewRegion(smallConfig(), 2, 0)
	installTenant(t, r, 0, 100)
	installTenant(t, r, 1, 101)
	d := NewDriver(r, 64)

	const perTenant = 400
	var submitted int
	var wg sync.WaitGroup
	// Collector goroutine.
	type agg struct {
		forwarded int
		perNode   map[string]int
	}
	out := agg{perNode: map[string]int{}}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for dr := range d.Results() {
			if dr.Err != nil {
				t.Errorf("driver error: %v", dr.Err)
				return
			}
			if dr.Result.GW.Action == xgwh.ActionForward {
				out.forwarded++
				out.perNode[dr.Result.NodeID]++
			}
		}
	}()
	// Two submitters (e.g. two LB uplinks) pushing distinct flows.
	results := make([]int, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vni := netpkt.VNI(100 + g)
			for i := 0; i < perTenant; i++ {
				b := netpkt.NewSerializeBuffer(128, 256)
				raw, err := (&netpkt.BuildSpec{
					VNI:      vni,
					OuterSrc: addr("10.1.1.11"), OuterDst: addr("10.255.0.1"),
					InnerSrc: addr("192.168.0.1"), InnerDst: addr("192.168.0.5"),
					Proto: netpkt.IPProtocolTCP, SrcPort: uint16(1000 + i), DstPort: 80,
				}).Build(b)
				if err != nil {
					t.Error(err)
					return
				}
				for !d.Submit(raw, time.Unix(0, 0)) {
					// Queue full: retry, as a paced sender would.
					time.Sleep(time.Microsecond)
				}
				results[g]++
			}
		}(g)
	}
	wg.Wait()
	submitted = results[0] + results[1]
	d.Close()
	<-done

	if out.forwarded != submitted {
		t.Fatalf("forwarded %d of %d", out.forwarded, submitted)
	}
	// Flows must spread across multiple nodes (ECMP parallelism).
	if len(out.perNode) < 2 {
		t.Fatalf("all packets on one node: %v", out.perNode)
	}
}

func TestDriverRejectsUnroutable(t *testing.T) {
	r := NewRegion(smallConfig(), 1, 0)
	installTenant(t, r, 0, 100)
	d := NewDriver(r, 8)
	defer func() {
		d.Close()
		for range d.Results() {
		}
	}()
	if d.Submit([]byte{1, 2, 3}, time.Unix(0, 0)) {
		t.Fatal("malformed packet accepted")
	}
	raw := buildPacket(t, 999, "192.168.0.1", "192.168.0.5")
	if d.Submit(raw, time.Unix(0, 0)) {
		t.Fatal("unsteered VNI accepted")
	}
}

func BenchmarkDriverParallelForward(b *testing.B) {
	cfg := DefaultConfig()
	cfg.NodesPerCluster = 4
	r := NewRegion(cfg, 1, 0)
	c := r.Clusters[0]
	c.InstallRoute(100, pfx("192.168.0.0/16"), tables.Route{Scope: tables.ScopeLocal})
	c.InstallVM(100, addr("192.168.0.5"), addr("100.64.0.5"))
	r.FrontEnd.Steering.Assign(100, 0)
	d := NewDriver(r, 1024)
	// Pre-build distinct-flow packets so ECMP spreads them.
	packets := make([][]byte, 256)
	for i := range packets {
		bb := netpkt.NewSerializeBuffer(128, 256)
		raw, err := (&netpkt.BuildSpec{
			VNI:      100,
			OuterSrc: addr("10.1.1.11"), OuterDst: addr("10.255.0.1"),
			InnerSrc: addr("192.168.0.1"), InnerDst: addr("192.168.0.5"),
			Proto: netpkt.IPProtocolUDP, SrcPort: uint16(i + 1), DstPort: 80,
		}).Build(bb)
		if err != nil {
			b.Fatal(err)
		}
		cp := make([]byte, len(raw))
		copy(cp, raw)
		packets[i] = cp
	}
	// Drain results in the background.
	go func() {
		for range d.Results() {
		}
	}()
	now := time.Unix(0, 0)
	b.SetBytes(int64(len(packets[0])))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			for !d.Submit(packets[i%len(packets)], now) {
			}
			i++
		}
	})
	b.StopTimer()
	d.Close()
}
