package cluster

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"sailfish/internal/heavyhitter"
	"sailfish/internal/netpkt"
	"sailfish/internal/tables"
	"sailfish/internal/trace"
	"sailfish/internal/xgwh"
)

// recorderReasons materializes the flight recorder's cumulative drop tally
// for one stage as a reason→count map.
func recorderReasons(rec *trace.Recorder, st trace.Stage) map[string]uint64 {
	m := map[string]uint64{}
	for _, dc := range rec.DropCounts() {
		if dc.Stage == st {
			m[dc.Reason] = dc.Count
		}
	}
	return m
}

// nonzero filters a reason map down to its nonzero entries, the common
// denominator between subsystems that materialize all reasons (region
// FrontDrops) and those that materialize only observed ones.
func nonzero(m map[string]uint64) map[string]uint64 {
	out := map[string]uint64{}
	for k, v := range m {
		if v > 0 {
			out[k] = v
		}
	}
	return out
}

// sumReasons merges per-node reason maps.
func sumReasons(ms ...map[string]uint64) map[string]uint64 {
	out := map[string]uint64{}
	for _, m := range ms {
		for k, v := range m {
			out[k] += v
		}
	}
	return nonzero(out)
}

// TestDropParityAcrossStages is the drop-accounting reconciliation the
// tentpole promises: every drop the flight recorder tallied must appear in
// the owning subsystem's interned per-reason counters with the same count,
// and vice versa — no reason may exist in one system but not the other. The
// sample shift is set so high that essentially no flow is sampled, proving
// drop capture is unconditional.
func TestDropParityAcrossStages(t *testing.T) {
	rec := trace.New(trace.Config{Shards: 4, SlotsPerShard: 1024, SampleShift: 20})

	// Region 1 exercises the front, gateway and fallback stages through the
	// single-shot path.
	r := NewRegion(smallConfig(), 4, 1)
	for id, vni := range []netpkt.VNI{100, 101, 102, 103} {
		installTenant(t, r, id, vni)
	}
	// A fifth, degraded cluster steers its residual traffic at the XGW-x86
	// pool; with an empty fallback table that books a fallback-stage
	// no_route plus a front-end fallback_error for the same packet death.
	r.AddCluster()
	installTenant(t, r, 4, 104)
	r.EnableTracing(rec)
	r.SetDegraded(4, true)
	r.SetClusterEnabled(1, false)
	for i := range r.Clusters[2].Nodes {
		r.Clusters[2].FailNode(i)
	}
	for _, n := range r.Clusters[3].Nodes {
		for p := 0; p < PortsPerNode; p++ {
			n.FailPort(p)
		}
	}

	for _, raw := range [][]byte{
		buildPacket(t, 100, "192.168.0.1", "192.168.0.5"), // forward
		{1, 2, 3}, // front parse_error
		buildPacket(t, 999, "192.168.0.1", "192.168.0.5"), // front no_route
		buildPacket(t, 101, "192.168.0.1", "192.168.0.5"), // cluster_disabled
		buildPacket(t, 102, "192.168.0.1", "192.168.0.5"), // no_live_node
		buildPacket(t, 103, "192.168.0.1", "192.168.0.5"), // no_healthy_port
		buildPacket(t, 104, "192.168.0.1", "192.168.0.5"), // degraded → fallback_error
	} {
		r.ProcessPacket(raw, t0()) //nolint:errcheck // drops expected
	}

	// The §5 residency path: tenant 105's VM entry is demoted from hardware
	// while the XGW-x86 pool keeps the table of record. A demoted key's
	// packet books a fallback-stage miss and completes on the pool; a key
	// the pool never learned dies there, with the death visible in both the
	// pool's no_vm counter and the front end's fallback_error — the same
	// dual-booking the degraded cluster above established.
	installTenant(t, r, 0, 105)
	if !r.Clusters[0].RemoveVM(105, addr("192.168.0.5")) {
		t.Fatal("demote: VM not resident in hardware")
	}
	pool := r.Fallback[0]
	pool.Routes.Insert(105, pfx("192.168.0.0/16"), tables.Route{Scope: tables.ScopeLocal})
	pool.VMNC.Insert(105, addr("192.168.0.5"), addr("100.64.0.5"))
	pre := r.Stats()
	resHot, err := r.ProcessPacket(buildPacket(t, 105, "192.168.0.1", "192.168.0.5"), t0())
	if err != nil || !resHot.ViaFallback || !resHot.GW.FallbackMiss {
		t.Fatalf("demoted entry: res=%+v err=%v", resHot, err)
	}
	if resHot.FallbackOut.NC != addr("100.64.0.5") {
		t.Fatalf("demoted entry served by wrong NC %v", resHot.FallbackOut.NC)
	}
	resMiss, err := r.ProcessPacket(buildPacket(t, 105, "192.168.0.1", "192.168.0.99"), t0())
	if err != nil || resMiss.ViaFallback || !resMiss.GW.FallbackMiss {
		t.Fatalf("pool-missing entry: res=%+v err=%v", resMiss, err)
	}
	st := r.Stats()
	if st.Fallback != pre.Fallback+2 || st.FallbackMiss != pre.FallbackMiss+2 {
		t.Fatalf("residency misses not booked: pre=%+v post=%+v", pre, st)
	}
	if st.Dropped != pre.Dropped+1 {
		t.Fatalf("pool-missing entry must drop exactly once: pre=%+v post=%+v", pre, st)
	}

	// Gateway-stage reasons the region path cannot reach (the front end
	// kills malformed frames first) are driven straight at one node.
	gw := r.Clusters[0].Nodes[0].GW
	gw.ProcessPacket([]byte{9, 9, 9}, t0()) //nolint:errcheck // gateway parse_error
	if err := gw.InstallRoute(110, pfx("10.0.0.0/8"), tables.Route{Scope: tables.ScopePeer, NextHopVNI: 111}); err != nil {
		t.Fatal(err)
	}
	if err := gw.InstallRoute(111, pfx("10.0.0.0/8"), tables.Route{Scope: tables.ScopePeer, NextHopVNI: 110}); err != nil {
		t.Fatal(err)
	}
	gw.ProcessPacket(buildPacket(t, 110, "192.168.0.1", "10.1.1.1"), t0()) //nolint:errcheck // route_loop
	gw.InstallVM(100, addr("192.168.0.77"), addr("100.64.0.77"))
	gw.InstallACL(100, tables.ACLRule{Dst: pfx("192.168.0.77/32"), Proto: netpkt.IPProtocolTCP,
		DstPortLo: 80, DstPortHi: 80, Action: tables.ACLDeny, Priority: 10})
	res, err := gw.ProcessPacket(buildPacket(t, 100, "192.168.0.1", "192.168.0.77"), t0())
	if err != nil || res.DropReason != "acl_deny" {
		t.Fatalf("acl packet: res=%+v err=%v", res, err)
	}

	// Fallback-stage extras driven straight at the pool node.
	fb := r.Fallback[0]
	fb.ProcessFallback([]byte{7}, t0()) //nolint:errcheck // fallback parse_error
	fb.Routes.Insert(42, pfx("192.168.0.0/16"), tables.Route{Scope: tables.ScopeLocal})
	fb.ProcessFallback(buildPacket(t, 42, "192.168.0.1", "192.168.0.9"), t0()) //nolint:errcheck // no_vm

	// Region 2 exercises the driver stage: the same recorder, the driver's
	// own taxonomy.
	rD, rawsD := dropMix(t)
	rD.EnableTracing(rec)
	d := NewDriver(rD, 64)
	d.SubmitBatch(rawsD, t0())
	d.Close()
	drain(d)
	if d.Submit(rawsD[0], t0()) { // driver_closed
		t.Fatal("Submit accepted after Close")
	}

	// Per-stage reconciliation, both directions (DeepEqual is symmetric).
	gwReasons := func(r *Region) []map[string]uint64 {
		var out []map[string]uint64
		for _, c := range r.Clusters {
			for _, half := range []*Cluster{c, c.Backup} {
				if half == nil {
					continue
				}
				for _, n := range half.Nodes {
					out = append(out, n.GW.Stats().DropReasons)
				}
			}
		}
		return out
	}
	checks := []struct {
		stage trace.Stage
		want  map[string]uint64
	}{
		{trace.StageFront, sumReasons(r.Stats().FrontDrops, rD.Stats().FrontDrops)},
		{trace.StageDriver, nonzero(d.Stats().DropReasons)},
		{trace.StageGateway, sumReasons(append(gwReasons(r), gwReasons(rD)...)...)},
		{trace.StageFallback, sumReasons(fb.Stats().DropReasons)},
	}
	for _, c := range checks {
		got := recorderReasons(rec, c.stage)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%v: recorder tally %v, subsystem counters %v", c.stage, got, c.want)
		}
		if len(c.want) == 0 {
			t.Errorf("%v: no drops generated — test mix lost coverage", c.stage)
		}
	}

	// The drop events themselves must sit in the ring despite the flows
	// being sampled out, each with a resolvable reason name.
	evs := rec.Events(trace.Filter{DropsOnly: true})
	if len(evs) < 12 {
		t.Fatalf("only %d drop events captured", len(evs))
	}
	for _, ev := range evs {
		if ev.Verdict != trace.VerdictDrop || ev.Code == 0 {
			t.Fatalf("non-drop event in DropsOnly view: %+v", ev)
		}
		if name := rec.ReasonName(ev.Stage, ev.Code); strings.HasPrefix(name, "code(") {
			t.Fatalf("unresolvable reason for %+v", ev)
		}
	}
}

// TestForwardPathZeroAllocTraced pins the region forward path at zero
// allocations per packet in three configurations: tracing disabled, tracing
// plus heavy hitters enabled with the flow sampled out, and tracing enabled
// with the flow sampled in (shift 0). It also proves drops still hit the
// recorder when the forward flow is sampled out.
func TestForwardPathZeroAllocTraced(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	pin := func(label string, r *Region, raw []byte) {
		t.Helper()
		now := t0()
		for i := 0; i < 10; i++ { // warm gateway scratch + heavy-hitter residency
			if _, err := r.ProcessPacket(raw, now); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(200, func() {
			res, err := r.ProcessPacket(raw, now)
			if err != nil {
				t.Fatal(err)
			}
			if res.GW.Action != xgwh.ActionForward {
				t.Fatalf("action = %v", res.GW.Action)
			}
		})
		if allocs != 0 {
			t.Fatalf("%s: forward path allocates %.1f per packet, want 0", label, allocs)
		}
	}
	build := func() (*Region, []byte) {
		r := NewRegion(smallConfig(), 1, 0)
		installTenant(t, r, 0, 100)
		return r, buildPacket(t, 100, "192.168.0.1", "192.168.0.5")
	}

	r1, raw1 := build()
	pin("tracing disabled", r1, raw1)

	// Sampled out: pick an inner source whose flow hash misses the 1-in-256
	// sample gate.
	r2, _ := build()
	rec := trace.New(trace.Config{Shards: 2, SlotsPerShard: 256, SampleShift: 8})
	r2.EnableTracing(rec)
	r2.EnableHeavyHitters(heavyhitter.NewTracker(64))
	var raw2 []byte
	var fh uint64
	for i := 1; i < 64; i++ {
		cand := buildPacket(t, 100, fmt.Sprintf("192.168.0.%d", i), "192.168.0.5")
		var fm netpkt.FrontMeta
		if err := netpkt.ParseFront(cand, &fm); err != nil {
			t.Fatal(err)
		}
		if h := fm.Flow.FastHash(); !rec.Sampled(h) {
			raw2, fh = cand, h
			break
		}
	}
	if raw2 == nil {
		t.Fatal("no sampled-out source found in 63 candidates")
	}
	pin("tracing enabled, flow sampled out", r2, raw2)
	if evs := rec.Events(trace.Filter{FlowHash: fh, MatchFlow: true}); len(evs) != 0 {
		t.Fatalf("sampled-out flow left %d events in the ring", len(evs))
	}
	// Drops bypass the sample gate entirely.
	r2.ProcessPacket([]byte{1, 2, 3}, t0())                                   //nolint:errcheck
	r2.ProcessPacket(buildPacket(t, 999, "192.168.0.1", "192.168.0.5"), t0()) //nolint:errcheck
	if evs := rec.Events(trace.Filter{DropsOnly: true}); len(evs) != 2 {
		t.Fatalf("captured %d drop events with sampling active, want 2", len(evs))
	}

	// Sampled in: shift 0 samples every flow; the seqlock publish itself
	// must not allocate either.
	r3, raw3 := build()
	r3.EnableTracing(trace.New(trace.Config{Shards: 2, SlotsPerShard: 256, SampleShift: 0}))
	r3.EnableHeavyHitters(heavyhitter.NewTracker(64))
	pin("tracing enabled, flow sampled in", r3, raw3)
}

// TestTraceCoherentUnderLiveDriver hammers the flight recorder and the
// heavy-hitter tracker from scraper goroutines while Driver workers push
// traffic through the region — the -race leg of the Makefile is the real
// assertion here.
func TestTraceCoherentUnderLiveDriver(t *testing.T) {
	rec := trace.New(trace.Config{Shards: 4, SlotsPerShard: 256, SampleShift: 2})
	hh := heavyhitter.NewTracker(128)
	r := NewRegion(smallConfig(), 2, 1)
	installTenant(t, r, 0, 100)
	installTenant(t, r, 1, 101)
	r.EnableTracing(rec)
	r.EnableHeavyHitters(hh)
	d := NewDriver(r, 64)

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for g := 0; g < 3; g++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = rec.Snapshot()
				_ = rec.Events(trace.Filter{DropsOnly: true})
				_ = rec.DropCounts()
				_ = hh.TopFlows(10)
				_ = hh.HotEntries(0.95)
				_ = hh.VNISkewSummary()
			}
		}()
	}

	const perWorker = 2000
	const workers = 2
	const unrouted = workers * perWorker / 10 // every 10th packet has no steering
	var submitters sync.WaitGroup
	var mu sync.Mutex
	accepted := 0
	for g := 0; g < workers; g++ {
		submitters.Add(1)
		go func(g int) {
			defer submitters.Done()
			acc := 0
			for i := 0; i < perWorker; i++ {
				vni := netpkt.VNI(100 + g)
				if i%10 == 9 {
					vni = 999 // unsteered: driver no_route drop, always recorded
				}
				raw := buildPacket(t, vni, fmt.Sprintf("192.168.%d.%d", g, i%50+1), "192.168.0.5")
				if d.Submit(raw, t0()) {
					acc++
				}
			}
			mu.Lock()
			accepted += acc
			mu.Unlock()
		}(g)
	}

	drained := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range d.Results() {
			drained++
		}
	}()

	submitters.Wait()
	close(stop)
	scrapers.Wait()
	d.Close()
	<-done

	if drained != accepted {
		t.Fatalf("drained %d results for %d accepted packets", drained, accepted)
	}
	// The tracker sees every successfully routed packet — including ones the
	// rx queue then rejected under backpressure (steering happens at Submit).
	if got := hh.TotalPackets(); got != workers*perWorker-unrouted {
		t.Fatalf("heavy hitters observed %d packets, want %d routed", got, workers*perWorker-unrouted)
	}
	if got := recorderReasons(rec, trace.StageDriver)["no_route"]; got != unrouted {
		t.Fatalf("recorder tallied %d driver no_route drops, want %d", got, unrouted)
	}
}
