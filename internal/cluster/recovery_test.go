package cluster

import (
	"testing"
)

// TestFailoverFailbackIdempotent: the failover/failback pair must be
// idempotent and symmetric so the recovery loop can fire twice without
// double-counting or flapping state.
func TestFailoverFailbackIdempotent(t *testing.T) {
	r := NewRegion(smallConfig(), 1, 0)

	if r.OnBackup(0) {
		t.Fatal("fresh region must serve from the main cluster")
	}
	if !r.FailoverCluster(0) {
		t.Fatal("first failover must report a switch")
	}
	if !r.OnBackup(0) {
		t.Fatal("failover did not move traffic to the backup")
	}
	if r.FailoverCluster(0) {
		t.Fatal("second failover must be a no-op")
	}

	if !r.FailbackCluster(0) {
		t.Fatal("first failback must report a switch")
	}
	if r.OnBackup(0) {
		t.Fatal("failback did not return traffic to the main cluster")
	}
	if r.FailbackCluster(0) {
		t.Fatal("second failback must be a no-op")
	}

	// The deprecated alias keeps working and stays idempotent.
	r.FailoverCluster(0)
	r.RestoreCluster(0)
	if r.OnBackup(0) {
		t.Fatal("RestoreCluster alias did not fail back")
	}
	r.RestoreCluster(0)
	if r.OnBackup(0) {
		t.Fatal("repeated RestoreCluster flipped state")
	}
}

// TestFailoverServesFromBackup: after failover the backup's tables answer
// traffic, and after failback the main cluster answers again.
func TestFailoverServesFromBackup(t *testing.T) {
	r := NewRegion(smallConfig(), 1, 0)
	installTenant(t, r, 0, 100)
	raw := buildPacket(t, 100, "192.168.0.1", "192.168.0.5")

	if _, err := r.ProcessPacket(raw, t0()); err != nil {
		t.Fatalf("pre-failover: %v", err)
	}
	r.FailoverCluster(0)
	if _, err := r.ProcessPacket(raw, t0()); err != nil {
		t.Fatalf("on backup (hot standby must hold mirrored tables): %v", err)
	}
	r.FailbackCluster(0)
	if _, err := r.ProcessPacket(raw, t0()); err != nil {
		t.Fatalf("post-failback: %v", err)
	}
}

// TestSetDegradedIdempotent mirrors the failover contract for degraded mode.
func TestSetDegradedIdempotent(t *testing.T) {
	r := NewRegion(smallConfig(), 1, 1)

	if !r.SetDegraded(0, true) {
		t.Fatal("first degrade must report a change")
	}
	if !r.DegradedCluster(0) {
		t.Fatal("cluster not marked degraded")
	}
	if r.SetDegraded(0, true) {
		t.Fatal("second degrade must be a no-op")
	}
	if !r.SetDegraded(0, false) {
		t.Fatal("first undegrade must report a change")
	}
	if r.SetDegraded(0, false) {
		t.Fatal("second undegrade must be a no-op")
	}
}

// TestAccountEntriesCapacityAndMirror: intent accounting enforces the entry
// capacity, mirrors into the backup's bookkeeping, and releases cleanly.
func TestAccountEntriesCapacityAndMirror(t *testing.T) {
	cfg := smallConfig()
	cfg.EntryCapacity = 10
	r := NewRegion(cfg, 1, 0)
	c := r.Clusters[0]

	if err := c.AccountEntries(100, 8); err != nil {
		t.Fatal(err)
	}
	if err := c.AccountEntries(100, 3); err != ErrOverCapacity {
		t.Fatalf("over-capacity reservation: got %v, want ErrOverCapacity", err)
	}
	if got := c.EntryCount(); got != 8 {
		t.Fatalf("failed reservation must not leak: entries = %d, want 8", got)
	}
	if !c.HasTenant(100) {
		t.Fatal("tenant not recorded in main bookkeeping")
	}
	if c.Backup == nil || !c.Backup.HasTenant(100) {
		t.Fatal("tenant not mirrored into the backup's bookkeeping")
	}
	if got := c.Backup.EntryCount(); got != 8 {
		t.Fatalf("backup entries = %d, want 8", got)
	}

	// Release: negative accounting drains both sides and drops the tenant.
	if err := c.AccountEntries(100, -8); err != nil {
		t.Fatal(err)
	}
	if c.EntryCount() != 0 || c.Backup.EntryCount() != 0 {
		t.Fatalf("release left entries: main=%d backup=%d", c.EntryCount(), c.Backup.EntryCount())
	}
	if c.HasTenant(100) || c.Backup.HasTenant(100) {
		t.Fatal("released tenant still recorded")
	}
	// Over-release clamps at zero instead of going negative.
	if err := c.AccountEntries(100, -5); err != nil {
		t.Fatal(err)
	}
	if c.EntryCount() != 0 {
		t.Fatalf("over-release went negative: %d", c.EntryCount())
	}
}

// TestAllNodesCoversBothReplicas: AllNodes must return main then backup
// nodes so per-node pushes reach the hot standby too.
func TestAllNodesCoversBothReplicas(t *testing.T) {
	r := NewRegion(smallConfig(), 1, 0)
	c := r.Clusters[0]
	all := c.AllNodes()
	want := len(c.Nodes) + len(c.Backup.Nodes)
	if len(all) != want {
		t.Fatalf("AllNodes = %d nodes, want %d (main + backup)", len(all), want)
	}
	seen := map[string]bool{}
	for _, n := range all {
		if seen[n.ID] {
			t.Fatalf("node %s listed twice", n.ID)
		}
		seen[n.ID] = true
	}
	// Capacity is per replica set, not the sum over both.
	if c.Capacity() != smallConfig().EntryCapacity {
		t.Fatalf("Capacity = %d, want %d", c.Capacity(), smallConfig().EntryCapacity)
	}
}
