//go:build race

package cluster

// raceEnabled reports whether the race detector instruments this build; its
// shadow-memory bookkeeping allocates on channel operations, so allocation
// pins skip themselves under -race (the same binary still runs them in the
// plain `go test` pass).
const raceEnabled = true
