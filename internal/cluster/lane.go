package cluster

import (
	"time"

	"sailfish/internal/heavyhitter"
	"sailfish/internal/lb"
	"sailfish/internal/netpkt"
	"sailfish/internal/slo"
	"sailfish/internal/trace"
	"sailfish/internal/xgw86"
	"sailfish/internal/xgwdpu"
	"sailfish/internal/xgwh"
)

// Lane is one run-to-completion execution context over the region: the
// steering → XGW-H → fallback pipeline of ProcessPacket, carrying its own
// packet scratch, stats counters and (optionally) its own flight recorder
// and heavy-hitter tracker. The region owns one built-in serial lane backing
// the classic single-goroutine entry points; the sharded plane creates one
// lane per shard and drives them concurrently — per-flow affinity comes from
// the caller sharding by flow hash, and everything a lane touches outside
// its own fields is either read-pure at traffic time (steering tables,
// cluster modes — the same control-plane quiescence contract the Driver
// documents) or internally synchronized (gateway tables, SNAT, counters).
//
// Hardware gateways are entered through their per-lane PacketScratch, so N
// lanes drive one chip model without serializing. Gateways wrapped by fault
// injectors (anything that is not a *xgwh.Gateway) and the XGW-x86 fallback
// nodes keep their single-threaded scratch, so concurrent lanes take a
// per-node mutex there — fallback is the slow path by design, and chaos
// wrappers are not performance subjects.
type Lane struct {
	r   *Region
	ctr *regionCounters
	sc  *xgwh.PacketScratch
	// serial marks the region's built-in lane: single-goroutine by
	// contract, entering gateways and fallback nodes directly (no locks,
	// gateway-embedded scratch) exactly as the pre-sharding path did.
	serial bool

	tr    *trace.Recorder
	trDev uint16
	hh    *heavyhitter.Tracker
	slo   *slo.Collector
}

// NewLane returns an independent lane over the region with its own counters
// and packet scratch, inheriting the region's SLO collector (per-VNI cells
// are internally atomic, so every lane shares one collector). Create every
// lane before traffic starts.
func (r *Region) NewLane() *Lane {
	return &Lane{r: r, ctr: &regionCounters{}, sc: xgwh.NewPacketScratch(), slo: r.slo}
}

// EnableTracing points the lane's events (front-end steering/drops and the
// gateway verdicts processed through this lane's scratch) at rec. The
// recorder must already be wired into the region with Region.EnableTracing —
// that call interns every device and registers each stage's taxonomy, so
// per-shard recorders built in the same order intern identical id tables and
// their tallies merge by summation (trace.MergeDropCounts).
func (ln *Lane) EnableTracing(rec *trace.Recorder) {
	ln.tr = rec
	if rec != nil {
		ln.trDev = rec.InternDevice("frontend")
	}
	if ln.sc != nil {
		ln.sc.SetRecorder(rec)
	}
}

// EnableHeavyHitters attaches the tracker this lane's steering decisions
// report into; per-shard trackers are merged on scrape
// (heavyhitter.Merge). Call before traffic starts.
func (ln *Lane) EnableHeavyHitters(t *heavyhitter.Tracker) { ln.hh = t }

// Stats snapshots the lane's own counters (the built-in lane's are the
// region's). Each cell is read atomically.
func (ln *Lane) Stats() RegionStats { return ln.ctr.snapshot() }

// AddStatsInto accumulates the lane's counters into dst, allocating dst's
// FrontDrops map on first use — the scrape-side merge a sharded plane sums
// its lanes with.
func (ln *Lane) AddStatsInto(dst *RegionStats) {
	if dst.FrontDrops == nil {
		dst.FrontDrops = make(map[string]uint64, numFrontDropReasons-1)
	}
	ln.ctr.addInto(dst)
}

// frontDrop books a front-end drop under its interned reason and emits the
// always-on flight-recorder event. The per-tenant SLO ledger books every
// front-drop reason as tenant loss — including no_route, which the region's
// own ledger counts beside dropped rather than inside it: from the tenant's
// side a packet with no steering rule is a lost packet.
func (ln *Lane) frontDrop(code uint8, flowHash uint64, vni netpkt.VNI, now time.Time) {
	ln.ctr.frontDrops[code].Add(1)
	if s := ln.slo; s != nil {
		s.Drop(vni)
	}
	if tr := ln.tr; tr != nil {
		tr.Record(trace.Event{
			TimeNs:   now.UnixNano(),
			FlowHash: flowHash,
			VNI:      vni,
			Dev:      ln.trDev,
			Stage:    trace.StageFront,
			Verdict:  trace.VerdictDrop,
			Code:     code,
		})
	}
}

// processGW enters a cluster node's gateway. Hardware gateways take the
// lane's scratch (safe concurrently); anything else falls back to the
// node-embedded scratch — directly on the serial lane, under the node mutex
// on shard lanes.
func (ln *Lane) processGW(node *Node, raw []byte, now time.Time) (xgwh.ForwardResult, error) {
	if g, ok := node.GW.(*xgwh.Gateway); ok && ln.sc != nil {
		return g.ProcessPacketWith(ln.sc, raw, now)
	}
	if ln.serial {
		return node.GW.ProcessPacket(raw, now)
	}
	node.mu.Lock()
	defer node.mu.Unlock()
	return node.GW.ProcessPacket(raw, now)
}

// processFallback completes a steered packet on the fallback pool node the
// flow hashes to. XGW-x86 nodes keep a single-threaded reencap scratch, so
// shard lanes serialize per node.
func (ln *Lane) processFallback(fb *xgw86.Node, idx int, raw []byte, now time.Time) (xgw86.FallbackResult, error) {
	if ln.serial {
		return fb.ProcessFallback(raw, now)
	}
	ln.r.fbMu[idx].Lock()
	defer ln.r.fbMu[idx].Unlock()
	return fb.ProcessFallback(raw, now)
}

// processDPU attempts the warm-tier lookup on the DPU device the flow
// hashes to. Devices keep single-threaded scratch like x86 nodes, so shard
// lanes serialize per device.
func (ln *Lane) processDPU(dev int, raw []byte, now time.Time) (xgwdpu.ForwardResult, bool, error) {
	if ln.serial {
		return ln.r.DPU.ProcessOn(dev, raw, now)
	}
	ln.r.dpuMu[dev].Lock()
	defer ln.r.dpuMu[dev].Unlock()
	return ln.r.DPU.ProcessOn(dev, raw, now)
}

// Process carries one packet through the region on this lane: steering →
// ECMP → XGW-H → (optionally) XGW-x86 fallback. Semantics and accounting are
// identical to Region.ProcessPacket — which is this method on the region's
// built-in lane.
func (ln *Lane) Process(raw []byte, now time.Time) (Result, error) {
	r := ln.r
	obs := r.obs
	var t0 time.Time
	if obs != nil {
		t0 = time.Now()
	}
	var fm netpkt.FrontMeta
	if err := netpkt.ParseFront(raw, &fm); err != nil {
		ln.ctr.dropped.Add(1)
		ln.frontDrop(fDropParseError, 0, 0, now)
		return Result{}, err
	}
	flowHash := fm.Flow.FastHash()
	clusterID, nodeIdx, err := r.FrontEnd.Route(fm.VNI, flowHash)
	if err != nil {
		ln.ctr.noRoute.Add(1)
		ln.frontDrop(fDropNoRoute, flowHash, fm.VNI, now)
		return Result{}, err
	}
	if obs != nil {
		obs.Steer.Observe(float64(time.Since(t0).Nanoseconds()))
	}
	if hh := ln.hh; hh != nil {
		hh.Observe(clusterID, fm.VNI, flowHash, fm.Flow.Dst, fm.WireLen)
	}
	return ln.deliver(raw, fm.VNI, flowHash, clusterID, nodeIdx, now, nil)
}

// deliver carries a routed packet into its cluster and, when steered there,
// the XGW-x86 fallback pool. memo may be nil (single-shot path). vni is the
// front parse's tenant id, carried along for flight-recorder events.
func (ln *Lane) deliver(raw []byte, vni netpkt.VNI, flowHash uint64, clusterID, nodeIdx int, now time.Time, memo *clusterMemo) (Result, error) {
	r := ln.r
	var disabled, degraded bool
	var c *Cluster
	if memo != nil && memo.ok && memo.clusterID == clusterID {
		disabled, degraded, c = memo.disabled, memo.degraded, memo.serving
	} else {
		disabled = r.disabled[clusterID]
		degraded = r.degraded[clusterID]
		c = r.serving(clusterID)
		if memo != nil {
			*memo = clusterMemo{ok: true, clusterID: clusterID,
				disabled: disabled, degraded: degraded, serving: c}
		}
	}
	if disabled {
		ln.ctr.dropped.Add(1)
		ln.frontDrop(fDropClusterDisabled, flowHash, vni, now)
		return Result{}, ErrClusterDisabled
	}
	if degraded {
		// Graceful degradation: both main and backup impaired — the
		// XGW-x86 pool carries the cluster's residual traffic.
		out := Result{ClusterID: clusterID}
		if len(r.Fallback) == 0 {
			ln.ctr.dropped.Add(1)
			ln.frontDrop(fDropNoLiveNode, flowHash, vni, now)
			return out, ErrNoLiveNodes
		}
		ln.ctr.degraded.Add(1)
		if s := ln.slo; s != nil {
			s.Degraded(vni)
		}
		fbIdx := int(flowHash % uint64(len(r.Fallback)))
		fres, ferr := ln.processFallback(r.Fallback[fbIdx], fbIdx, raw, now)
		if ferr != nil {
			ln.ctr.dropped.Add(1)
			ln.frontDrop(fDropFallbackError, flowHash, vni, now)
			return out, ferr
		}
		out.GW = xgwh.ForwardResult{Action: xgwh.ActionFallback}
		out.ViaFallback = true
		out.FallbackOut = fres
		return out, nil
	}
	live := c.LiveNodes()
	if len(live) == 0 {
		ln.ctr.dropped.Add(1)
		ln.frontDrop(fDropNoLiveNode, flowHash, vni, now)
		return Result{}, ErrNoLiveNodes
	}
	node := live[nodeIdx%len(live)]
	port, ok := node.PickPort(flowHash)
	if !ok {
		ln.ctr.dropped.Add(1)
		ln.frontDrop(fDropNoHealthyPort, flowHash, vni, now)
		return Result{}, ErrNoLiveNodes
	}
	if tr := ln.tr; tr != nil && tr.Sampled(flowHash) {
		// The steering hop of a sampled flow's timeline: which node the
		// front end picked, before the gateway's own verdict event.
		tr.Record(trace.Event{TimeNs: now.UnixNano(), FlowHash: flowHash,
			VNI: vni, Dev: node.trDev, Stage: trace.StageFront, Verdict: trace.VerdictSteered})
	}
	res, err := ln.processGW(node, raw, now)
	if err != nil {
		return Result{}, err
	}
	out := Result{ClusterID: clusterID, NodeID: node.ID, EgressPort: port, GW: res}
	// The per-tenant SLO ledger mirrors every region counter site exactly
	// (one increment beside each ctr.* add), so the two ledgers reconcile
	// field-for-field — including the shared quirk that a pool error after
	// a booked fallback leaves both fallback and dropped incremented.
	sloCol := ln.slo
	switch res.Action {
	case xgwh.ActionForward:
		ln.ctr.forwarded.Add(1)
		if sloCol != nil {
			sloCol.Forward(vni)
		}
	case xgwh.ActionDrop:
		ln.ctr.dropped.Add(1)
		if sloCol != nil {
			sloCol.Drop(vni)
		}
	case xgwh.ActionFallback:
		if res.FallbackMiss {
			// A genuine hardware table miss: the residency ladder's middle
			// rung gets the first shot at it. Deliberate service-VNI
			// steering bypasses the DPU — its SNAT state lives on x86.
			ln.ctr.fallbackMiss.Add(1)
			if sloCol != nil {
				sloCol.FallbackMiss(vni)
			}
			if dpu := r.DPU; dpu != nil {
				dev := int(flowHash % uint64(dpu.Devices()))
				dres, served, derr := ln.processDPU(dev, raw, now)
				if derr != nil {
					ln.ctr.dropped.Add(1)
					ln.frontDrop(fDropDPUError, flowHash, vni, now)
					return out, nil
				}
				if served {
					ln.ctr.dpuServed.Add(1)
					if sloCol != nil {
						sloCol.DPUServed(vni)
					}
					out.ViaDPU = true
					out.DPUOut = dres
					return out, nil
				}
			}
			ln.ctr.fallbackMissX86.Add(1)
			if sloCol != nil {
				sloCol.FallbackMissX86(vni)
			}
		}
		ln.ctr.fallback.Add(1)
		if sloCol != nil {
			sloCol.Fallback(vni)
		}
		if len(r.Fallback) == 0 {
			return out, nil
		}
		fbIdx := int(flowHash % uint64(len(r.Fallback)))
		fres, ferr := ln.processFallback(r.Fallback[fbIdx], fbIdx, raw, now)
		if ferr != nil {
			ln.ctr.dropped.Add(1)
			ln.frontDrop(fDropFallbackError, flowHash, vni, now)
			return out, nil
		}
		out.ViaFallback = true
		out.FallbackOut = fres
	}
	return out, nil
}

// ProcessBatch runs a batch of raw packets through the lane in arrival
// order, with the same steering/cluster-mode memoization as
// Region.ProcessBatch (which is this method on the region's built-in lane).
func (ln *Lane) ProcessBatch(raws [][]byte, now time.Time, out []BatchResult) []BatchResult {
	r := ln.r
	var steer steerMemo
	var cmemo clusterMemo
	for _, raw := range raws {
		var fm netpkt.FrontMeta
		if err := netpkt.ParseFront(raw, &fm); err != nil {
			ln.ctr.dropped.Add(1)
			ln.frontDrop(fDropParseError, 0, 0, now)
			out = append(out, BatchResult{Err: err})
			continue
		}
		flowHash := fm.Flow.FastHash()
		var clusterID, nodeIdx int
		if steer.ok && steer.vni == fm.VNI {
			ni, ok := steer.group.PickHash(flowHash)
			if !ok {
				// Group emptied out: take the uncached path for the
				// canonical error and stats.
				steer.ok = false
			} else {
				clusterID, nodeIdx = steer.cluster, ni
			}
		}
		if !steer.ok || steer.vni != fm.VNI {
			var err error
			clusterID, nodeIdx, err = r.FrontEnd.Route(fm.VNI, flowHash)
			if err != nil {
				ln.ctr.noRoute.Add(1)
				ln.frontDrop(fDropNoRoute, flowHash, fm.VNI, now)
				out = append(out, BatchResult{Err: err})
				continue
			}
			if cl, g, ramped, err := r.FrontEnd.RouteInfo(fm.VNI); err == nil && !ramped {
				steer.ok, steer.vni, steer.cluster, steer.group = true, fm.VNI, cl, g
			} else {
				steer.ok = false
			}
		}
		if hh := ln.hh; hh != nil {
			hh.Observe(clusterID, fm.VNI, flowHash, fm.Flow.Dst, fm.WireLen)
		}
		res, err := ln.deliver(raw, fm.VNI, flowHash, clusterID, nodeIdx, now, &cmemo)
		out = append(out, BatchResult{Result: res, Err: err})
	}
	return out
}

// snapshot reads the counter block into a RegionStats.
func (c *regionCounters) snapshot() RegionStats {
	s := RegionStats{
		Forwarded:       c.forwarded.Load(),
		Fallback:        c.fallback.Load(),
		FallbackMiss:    c.fallbackMiss.Load(),
		DPUServed:       c.dpuServed.Load(),
		FallbackMissX86: c.fallbackMissX86.Load(),
		Dropped:         c.dropped.Load(),
		NoRoute:         c.noRoute.Load(),
		Degraded:        c.degraded.Load(),
		FrontDrops:      make(map[string]uint64, numFrontDropReasons-1),
	}
	for code := 1; code < int(numFrontDropReasons); code++ {
		s.FrontDrops[frontDropName[code]] = c.frontDrops[code].Load()
	}
	return s
}

// addInto accumulates this block's cells into dst — the merge step behind a
// sharded plane's scrape.
func (c *regionCounters) addInto(dst *RegionStats) {
	dst.Forwarded += c.forwarded.Load()
	dst.Fallback += c.fallback.Load()
	dst.FallbackMiss += c.fallbackMiss.Load()
	dst.DPUServed += c.dpuServed.Load()
	dst.FallbackMissX86 += c.fallbackMissX86.Load()
	dst.Dropped += c.dropped.Load()
	dst.NoRoute += c.noRoute.Load()
	dst.Degraded += c.degraded.Load()
	for code := 1; code < int(numFrontDropReasons); code++ {
		dst.FrontDrops[frontDropName[code]] += c.frontDrops[code].Load()
	}
}

// steerMemo caches one VNI's steering decision within a batch.
type steerMemo struct {
	ok      bool
	vni     netpkt.VNI
	cluster int
	group   *lb.ECMP
}
