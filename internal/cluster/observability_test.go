package cluster

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"sailfish/internal/metrics"
	"sailfish/internal/netpkt"
	"sailfish/internal/xgwh"
)

// dropMix builds a region whose clusters exercise every submitting-side
// drop reason, plus the packet set that hits them: forwards on cluster 0,
// a disabled cluster, a cluster with no live nodes, a cluster with no
// healthy ports, an unsteered VNI and a malformed frame.
func dropMix(t *testing.T) (*Region, [][]byte) {
	t.Helper()
	r := NewRegion(smallConfig(), 4, 0)
	installTenant(t, r, 0, 100)
	installTenant(t, r, 1, 101)
	installTenant(t, r, 2, 102)
	installTenant(t, r, 3, 103)
	r.SetClusterEnabled(1, false)
	for i := range r.Clusters[2].Nodes {
		r.Clusters[2].FailNode(i)
	}
	for _, n := range r.Clusters[3].Nodes {
		for p := 0; p < PortsPerNode; p++ {
			n.FailPort(p)
		}
	}
	raws := [][]byte{
		buildPacket(t, 100, "192.168.0.1", "192.168.0.5"),
		buildPacket(t, 100, "192.168.0.2", "192.168.0.5"),
		buildPacket(t, 100, "192.168.0.3", "192.168.0.5"),
		buildPacket(t, 101, "192.168.0.1", "192.168.0.5"), // cluster disabled
		buildPacket(t, 102, "192.168.0.1", "192.168.0.5"), // no live node
		buildPacket(t, 103, "192.168.0.1", "192.168.0.5"), // no healthy port
		buildPacket(t, 999, "192.168.0.1", "192.168.0.5"), // unsteered VNI
		{1, 2, 3}, // malformed
	}
	return r, raws
}

// drain consumes every outstanding driver result after Close.
func drain(d *Driver) int {
	n := 0
	for range d.Results() {
		n++
	}
	return n
}

// TestDriverDropAccountingParity runs the same packet mix through the
// single-shot region path, per-packet Submit, and SubmitBatch, and requires
// (a) identical RegionStats from all three, (b) identical DriverStats from
// both driver paths, and (c) every submitting-side drop reason accounted
// exactly once.
func TestDriverDropAccountingParity(t *testing.T) {
	rShot, raws := dropMix(t)
	for _, raw := range raws {
		rShot.ProcessPacket(raw, t0()) //nolint:errcheck // drops expected
	}

	rSingle, raws1 := dropMix(t)
	d1 := NewDriver(rSingle, 64)
	accepted1 := 0
	for _, raw := range raws1 {
		if d1.Submit(raw, t0()) {
			accepted1++
		}
	}
	d1.Close()
	drained1 := drain(d1)

	rBatch, raws2 := dropMix(t)
	d2 := NewDriver(rBatch, 64)
	accepted2 := d2.SubmitBatch(raws2, t0())
	d2.Close()
	drained2 := drain(d2)

	if accepted1 != 3 || accepted2 != 3 {
		t.Fatalf("accepted %d (single) / %d (batch), want 3", accepted1, accepted2)
	}
	if drained1 != accepted1 || drained2 != accepted2 {
		t.Fatalf("drained %d/%d for accepted %d/%d", drained1, drained2, accepted1, accepted2)
	}
	// The coarse region counters must agree across all three paths. The
	// per-reason FrontDrops map intentionally differs: the single-shot path
	// books its kills under the front-end taxonomy, the driver under its own
	// (asserted below), so it is compared separately.
	coarse := func(s RegionStats) RegionStats { s.FrontDrops = nil; return s }
	if s := coarse(rSingle.Stats()); !reflect.DeepEqual(s, coarse(rShot.Stats())) {
		t.Fatalf("Submit region stats %+v diverge from single-shot %+v", s, coarse(rShot.Stats()))
	}
	if s := coarse(rBatch.Stats()); !reflect.DeepEqual(s, coarse(rShot.Stats())) {
		t.Fatalf("SubmitBatch region stats %+v diverge from single-shot %+v", s, coarse(rShot.Stats()))
	}
	wantFront := map[string]uint64{
		"parse_error":      1,
		"no_route":         1,
		"cluster_disabled": 1,
		"no_live_node":     1,
		"no_healthy_port":  1,
		"fallback_error":   0,
		"dpu_error":        0,
	}
	if got := rShot.Stats().FrontDrops; !reflect.DeepEqual(got, wantFront) {
		t.Fatalf("front drop reasons = %v, want %v", got, wantFront)
	}
	if !reflect.DeepEqual(d1.Stats(), d2.Stats()) {
		t.Fatalf("driver stats diverge: single %+v, batch %+v", d1.Stats(), d2.Stats())
	}
	want := map[string]uint64{
		"parse_error":      1,
		"no_route":         1,
		"cluster_disabled": 1,
		"no_live_node":     1,
		"no_healthy_port":  1,
	}
	if got := d1.Stats(); !reflect.DeepEqual(got.DropReasons, want) {
		t.Fatalf("drop reasons = %v, want %v", got.DropReasons, want)
	}
	if got := d1.Stats(); got.Accepted != 3 || got.Dropped != 5 {
		t.Fatalf("accepted/dropped = %d/%d, want 3/5", got.Accepted, got.Dropped)
	}
}

// TestDriverSubmitDuringClose hammers Submit/SubmitBatch from several
// goroutines while Close runs. Before this fix a racing Submit panicked on
// the closed queue channel; now it must reject cleanly, count the drop as
// driver_closed, and never corrupt the accepted==drained invariant.
func TestDriverSubmitDuringClose(t *testing.T) {
	r := NewRegion(smallConfig(), 1, 0)
	installTenant(t, r, 0, 100)
	d := NewDriver(r, 8)
	raw := buildPacket(t, 100, "192.168.0.1", "192.168.0.5")

	drained := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range d.Results() {
			drained++
		}
	}()

	var accepted sync.WaitGroup
	var total int64
	var mu sync.Mutex
	for g := 0; g < 4; g++ {
		accepted.Add(1)
		go func() {
			defer accepted.Done()
			n := 0
			for i := 0; i < 500; i++ {
				if d.Submit(raw, t0()) {
					n++
				}
				n += d.SubmitBatch([][]byte{raw, raw}, t0())
			}
			mu.Lock()
			total += int64(n)
			mu.Unlock()
		}()
	}
	time.Sleep(time.Millisecond)
	d.Close()
	accepted.Wait()
	d.Close() // idempotent
	<-done

	if d.Submit(raw, t0()) {
		t.Fatal("Submit accepted after Close")
	}
	if n := d.SubmitBatch([][]byte{raw}, t0()); n != 0 {
		t.Fatalf("SubmitBatch accepted %d after Close", n)
	}
	if d.Stats().DropReasons["driver_closed"] == 0 {
		t.Fatal("driver_closed drops not counted")
	}
	if int64(drained) != total {
		t.Fatalf("drained %d results for %d accepted packets", drained, total)
	}
}

// TestDriverSubmitBatchZeroAlloc pins the steady-state SubmitBatch path at
// zero allocations per batch: the per-call grouping map is gone (pooled
// scratch), buffers and batches recycle, and results are drained
// synchronously so every pool refills between rounds.
func TestDriverSubmitBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector shadow memory allocates on channel operations")
	}
	r := NewRegion(smallConfig(), 1, 0)
	installTenant(t, r, 0, 100)
	d := NewDriver(r, 256)
	var raws [][]byte
	for i := 0; i < 32; i++ {
		// Distinct inner sources spread the flows across the cluster's nodes,
		// so the scratch groups several per-node batches per call.
		raws = append(raws, buildPacket(t, 100, fmt.Sprintf("192.168.1.%d", i+1), "192.168.0.5"))
	}
	now := t0()
	run := func() {
		accepted := d.SubmitBatch(raws, now)
		if accepted != len(raws) {
			t.Fatalf("accepted %d of %d", accepted, len(raws))
		}
		for i := 0; i < accepted; i++ {
			if dr := <-d.Results(); dr.Err != nil {
				t.Fatal(dr.Err)
			}
		}
	}
	for i := 0; i < 10; i++ {
		run() // warm every pool
	}
	allocs := testing.AllocsPerRun(100, run)
	if allocs != 0 {
		t.Fatalf("steady-state SubmitBatch allocates %.1f per batch, want 0", allocs)
	}
	d.Close()
}

// TestDriverSaturatedSubmitZeroAlloc pins the backpressured SubmitBatch
// path: once the RX queues, the workers' result path and the results
// channel are all full (nothing drains them), every further submission is
// pure tail-drop recycling — route, copy into a recycled buffer, fail the
// queue send, recycle batch and buffer — and must not allocate. This is the
// regression guard for the driver/submit-batch bench residual: only the
// one-time queue-population ramp may allocate, never the steady state.
func TestDriverSaturatedSubmitZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector shadow memory allocates on channel operations")
	}
	r := NewRegion(smallConfig(), 1, 0)
	installTenant(t, r, 0, 100)
	d := NewDriver(r, 4)
	var raws [][]byte
	for i := 0; i < 16; i++ {
		raws = append(raws, buildPacket(t, 100, fmt.Sprintf("192.168.1.%d", i+1), "192.168.0.5"))
	}
	now := t0()
	// Saturate: with Results undrained the workers wedge on the full result
	// path and the queues stay full for good.
	zeros := 0
	for i := 0; i < 10_000 && zeros < 5; i++ {
		if d.SubmitBatch(raws, now) == 0 {
			zeros++
		} else {
			zeros = 0
		}
	}
	if zeros < 5 {
		t.Fatal("driver never saturated")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if d.SubmitBatch(raws, now) != 0 {
			t.Fatal("queue drained unexpectedly mid-pin")
		}
	})
	if allocs != 0 {
		t.Fatalf("saturated SubmitBatch allocates %.1f per batch, want 0", allocs)
	}
	go func() {
		for range d.Results() {
		}
	}()
	d.Close()
}

// TestStatsCoherentUnderLiveDriver is the tentpole's acceptance check: Stats,
// ResetStats, FallbackRatio and the per-gateway snapshots are hammered from
// scraper goroutines while Driver workers process traffic, under -race.
func TestStatsCoherentUnderLiveDriver(t *testing.T) {
	r := NewRegion(smallConfig(), 2, 1)
	installTenant(t, r, 0, 100)
	installTenant(t, r, 1, 101)
	d := NewDriver(r, 64)

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for g := 0; g < 3; g++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = r.Stats()
				_ = r.FallbackRatio()
				_ = d.Stats()
				for _, c := range r.Clusters {
					for _, n := range c.Nodes {
						_ = n.GW.Stats()
					}
				}
			}
		}()
	}
	scrapers.Add(1)
	go func() {
		defer scrapers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			r.ResetStats()
			d.ResetStats()
			if g, ok := r.Clusters[0].Nodes[0].GW.(*xgwh.Gateway); ok {
				g.ResetStats()
			}
		}
	}()

	var submitters sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for g := 0; g < 2; g++ {
		submitters.Add(1)
		go func(g int) {
			defer submitters.Done()
			raw := buildPacket(t, netpkt.VNI(100+g), "192.168.0.1", "192.168.0.5")
			n := 0
			for i := 0; i < 2000; i++ {
				if d.Submit(raw, t0()) {
					n++
				}
			}
			mu.Lock()
			total += n
			mu.Unlock()
		}(g)
	}

	drained := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range d.Results() {
			drained++
		}
	}()

	submitters.Wait()
	close(stop)
	scrapers.Wait()
	d.Close()
	<-done
	if drained != total {
		t.Fatalf("drained %d results for %d accepted packets", drained, total)
	}
}

// TestDriverRegisterMetricsExposition checks the driver's scrape surface:
// every drop reason label, the queue gauges, and the region families render
// into the Prometheus text format.
func TestDriverRegisterMetricsExposition(t *testing.T) {
	r, raws := dropMix(t)
	d := NewDriver(r, 64)
	reg := metrics.NewRegistry()
	r.RegisterMetrics(reg)
	d.RegisterMetrics(reg)
	d.SubmitBatch(raws, t0())
	d.Close()
	drain(d)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	for _, want := range append([]string{
		"sailfish_driver_accepted_total 3",
		"sailfish_driver_dropped_total 5",
		"sailfish_region_forwarded_total 3",
		"sailfish_region_noroute_total 1",
		"sailfish_region_dropped_total 4",
		"sailfish_driver_queue_capacity 64",
		`sailfish_driver_queue_depth{node="xgwh-main-0-0"} 0`,
		`sailfish_cluster_water_level{cluster="0"}`,
		"sailfish_region_fallback_ratio 0",
	}, func() []string {
		var out []string
		for _, reason := range DriverDropReasonNames() {
			out = append(out, `sailfish_driver_drops_total{reason="`+reason+`"}`)
		}
		return out
	}()...) {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, body)
		}
	}
}
