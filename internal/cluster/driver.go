package cluster

import (
	"sync"
	"time"

	"sailfish/internal/netpkt"
)

// Driver processes packets through a region concurrently: one worker
// goroutine per XGW-H node, matching the hardware reality that every chip
// is an independent pipeline while each chip processes its own packets
// serially. The front-end routing decision is taken on the submitting side
// (the load balancer is a separate device), then the packet is queued to
// its node's worker.
//
// Queues carry batches rather than single packets so a burst costs one
// channel operation per node instead of one per packet, and both the
// batches and the raw-byte copies are recycled through sync.Pools so the
// steady state stops allocating.
//
// The Driver serves the steady state: control-plane mutations (installs,
// failovers) must not run concurrently with Submit, just as production
// quiesces a node before reprogramming it.
type Driver struct {
	region  *Region
	queues  map[string]chan *jobBatch
	resultq chan *resultBatch
	results chan DriverResult
	wg      sync.WaitGroup
	demuxWG sync.WaitGroup
	depth   int

	batchPool sync.Pool // *jobBatch
	resPool   sync.Pool // *resultBatch
	bufPool   sync.Pool // *[]byte packet copies
}

type job struct {
	// raw points at the pooled backing buffer holding the packet copy; the
	// worker returns it to bufPool after processing.
	raw  *[]byte
	now  time.Time
	node *Node
	meta Result
}

type jobBatch struct {
	jobs []job
}

// resultBatch carries one processed jobBatch's outcomes from a worker to
// the demux goroutine, so workers pay one channel operation per batch.
type resultBatch struct {
	res []DriverResult
}

// DriverResult is one packet's outcome from the concurrent path.
type DriverResult struct {
	Result Result
	Err    error
}

// NewDriver builds a driver over the region's current live topology.
// queueDepth bounds each node's RX queue (in batches); a full queue drops
// the batch (tail drop, as a NIC would).
func NewDriver(r *Region, queueDepth int) *Driver {
	if queueDepth <= 0 {
		queueDepth = 256
	}
	d := &Driver{
		region:  r,
		queues:  make(map[string]chan *jobBatch),
		resultq: make(chan *resultBatch, queueDepth*2),
		results: make(chan DriverResult, queueDepth*4),
		depth:   queueDepth,
	}
	for _, c := range r.Clusters {
		for _, set := range [][]*Node{c.Nodes, c.Backup.Nodes} {
			for _, n := range set {
				q := make(chan *jobBatch, queueDepth)
				d.queues[n.ID] = q
				d.wg.Add(1)
				go d.worker(q)
			}
		}
	}
	d.demuxWG.Add(1)
	go d.demux()
	return d
}

// worker owns one gateway: packets are processed strictly in arrival order,
// preserving the single-threaded gateway invariant. Outcomes leave as one
// resultBatch per jobBatch.
func (d *Driver) worker(q chan *jobBatch) {
	defer d.wg.Done()
	for b := range q {
		rb, _ := d.resPool.Get().(*resultBatch)
		if rb == nil {
			rb = &resultBatch{}
		}
		for i := range b.jobs {
			j := &b.jobs[i]
			res, err := j.node.GW.ProcessPacket(*j.raw, j.now)
			out := j.meta
			out.GW = res
			rb.res = append(rb.res, DriverResult{Result: out, Err: err})
			d.bufPool.Put(j.raw)
			j.raw = nil
		}
		b.jobs = b.jobs[:0]
		d.batchPool.Put(b)
		d.resultq <- rb
	}
}

// demux fans worker result batches out onto the public per-result channel.
func (d *Driver) demux() {
	defer d.demuxWG.Done()
	for rb := range d.resultq {
		for i := range rb.res {
			d.results <- rb.res[i]
		}
		rb.res = rb.res[:0]
		d.resPool.Put(rb)
	}
}

func (d *Driver) getBatch() *jobBatch {
	if b, _ := d.batchPool.Get().(*jobBatch); b != nil {
		return b
	}
	return &jobBatch{}
}

// getBuf returns a pooled buffer resized to n bytes.
func (d *Driver) getBuf(n int) *[]byte {
	p, _ := d.bufPool.Get().(*[]byte)
	if p == nil {
		b := make([]byte, n)
		return &b
	}
	if cap(*p) < n {
		*p = make([]byte, n)
	} else {
		*p = (*p)[:n]
	}
	return p
}

// recycle returns a batch's buffers and the batch itself to their pools
// without processing (used on tail drop).
func (d *Driver) recycle(b *jobBatch) {
	for i := range b.jobs {
		d.bufPool.Put(b.jobs[i].raw)
		b.jobs[i].raw = nil
	}
	b.jobs = b.jobs[:0]
	d.batchPool.Put(b)
}

// route takes the submitting-side decision for one packet — lightweight
// front parse, steering, node and egress-port pick, all off a single flow
// hash — copies the bytes into a pooled buffer and fills j. It reports
// false when the packet is unroutable.
func (d *Driver) route(raw []byte, now time.Time, j *job) bool {
	var fm netpkt.FrontMeta
	if err := netpkt.ParseFront(raw, &fm); err != nil {
		return false
	}
	flowHash := fm.Flow.FastHash()
	clusterID, nodeIdx, err := d.region.FrontEnd.Route(fm.VNI, flowHash)
	if err != nil || !d.region.ClusterEnabled(clusterID) {
		return false
	}
	c := d.region.serving(clusterID)
	live := c.LiveNodes()
	if len(live) == 0 {
		return false
	}
	node := live[nodeIdx%len(live)]
	port, ok := node.PickPort(flowHash)
	if !ok {
		return false
	}
	cp := d.getBuf(len(raw))
	copy(*cp, raw)
	*j = job{raw: cp, now: now, node: node,
		meta: Result{ClusterID: clusterID, NodeID: node.ID, EgressPort: port}}
	return true
}

// Submit routes the packet and enqueues it to its node as a batch of one.
// It reports false when the packet was dropped at routing or by a full
// queue. The raw slice is copied; callers may reuse their buffer.
func (d *Driver) Submit(raw []byte, now time.Time) bool {
	var j job
	if !d.route(raw, now, &j) {
		return false
	}
	b := d.getBatch()
	b.jobs = append(b.jobs, j)
	select {
	case d.queues[j.node.ID] <- b:
		return true
	default:
		d.recycle(b) // RX queue overflow: tail drop
		return false
	}
}

// SubmitBatch routes a batch of packets and enqueues them grouped per node,
// so each node's RX queue is hit once per batch instead of once per packet.
// Unroutable packets are skipped; a full node queue tail-drops that node's
// whole group. It returns the number of packets accepted. Raw slices are
// copied into pooled buffers; callers may reuse them immediately.
func (d *Driver) SubmitBatch(raws [][]byte, now time.Time) int {
	groups := make(map[*Node]*jobBatch)
	for _, raw := range raws {
		var j job
		if !d.route(raw, now, &j) {
			continue
		}
		b := groups[j.node]
		if b == nil {
			b = d.getBatch()
			groups[j.node] = b
		}
		b.jobs = append(b.jobs, j)
	}
	accepted := 0
	for node, b := range groups {
		n := len(b.jobs) // before the send: the worker owns b afterwards
		select {
		case d.queues[node.ID] <- b:
			accepted += n
		default:
			d.recycle(b) // RX queue overflow: tail drop the group
		}
	}
	return accepted
}

// Results delivers packet outcomes; read until Close's drain completes.
func (d *Driver) Results() <-chan DriverResult { return d.results }

// Close stops the workers after draining queued packets and closes the
// results channel.
func (d *Driver) Close() {
	for _, q := range d.queues {
		close(q)
	}
	d.wg.Wait()
	close(d.resultq)
	d.demuxWG.Wait()
	close(d.results)
}
