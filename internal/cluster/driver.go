package cluster

import (
	"sync"
	"sync/atomic"
	"time"

	"sailfish/internal/metrics"
	"sailfish/internal/netpkt"
	"sailfish/internal/trace"
	"sailfish/internal/xgwh"
)

// Driver processes packets through a region concurrently: one worker
// goroutine per XGW-H node, matching the hardware reality that every chip
// is an independent pipeline while each chip processes its own packets
// serially. The front-end routing decision is taken on the submitting side
// (the load balancer is a separate device), then the packet is queued to
// its node's worker.
//
// Queues carry batches rather than single packets so a burst costs one
// channel operation per node instead of one per packet, and both the
// batches and the raw-byte copies are recycled through sync.Pools so the
// steady state stops allocating.
//
// The Driver serves the steady state: control-plane mutations (installs,
// failovers) must not run concurrently with Submit, just as production
// quiesces a node before reprogramming it. Stats, ResetStats and the
// metrics scrape ARE safe concurrently with submission — every counter the
// driver (and the region under it) touches is atomic.
type Driver struct {
	region  *Region
	queues  map[string]chan *jobBatch
	resultq chan *resultBatch
	results chan DriverResult
	wg      sync.WaitGroup
	demuxWG sync.WaitGroup
	depth   int

	// mu serializes Close against in-flight Submit/SubmitBatch sends:
	// submitters hold the read side across the (nonblocking) channel send,
	// Close takes the write side to flip closed before closing the queues,
	// so a send can never hit a closed channel.
	mu     sync.RWMutex
	closed bool

	stats driverCounters

	// Recycling runs through bounded freelist channels with the sync.Pools
	// as overflow: a GC cycle empties the pools (dropping every grown slice
	// capacity with them), so on a long-lived driver the pools alone leave a
	// steady trickle of re-allocation on the submit path. The freelists are
	// GC-proof and sized like a NIC mempool — to the worst-case in-flight
	// population the topology allows (queues × depth × defaultBatchCap jobs,
	// capped at maxBufFreeSlots) — so in steady state every buffer the
	// submitter needs is one a worker already returned, and the pools only
	// absorb bursts beyond that ceiling (outsized caller batches).
	batchFree   chan *jobBatch
	resFree     chan *resultBatch
	bufFree     chan *[]byte
	batchPool   sync.Pool // *jobBatch overflow
	resPool     sync.Pool // *resultBatch overflow
	bufPool     sync.Pool // *[]byte packet copies, overflow
	scratchPool sync.Pool // *batchScratch per-SubmitBatch grouping state
}

// defaultBatchCap pre-sizes recycled job/result slices so a fresh batch
// does not pay the append growth chain packet by packet.
const defaultBatchCap = 64

// defaultBufCap pre-sizes recycled packet buffers; frames up to this length
// reuse any recycled buffer instead of only same-or-larger ones.
const defaultBufCap = 2048

// maxBufFreeSlots caps the packet-buffer freelist: the slot array itself is
// allocated eagerly (8 B/slot), and retained buffers never shrink back, so
// a deep-queue many-node driver is bounded at 2 MiB of slots rather than
// scaling without limit.
const maxBufFreeSlots = 1 << 18

// Driver drop-reason codes. The hot path increments a fixed array indexed
// by these; names are materialized only on the slow path (Stats, scrape).
const (
	dDropNone uint8 = iota
	dDropParseError
	dDropNoRoute
	dDropClusterDisabled
	dDropNoLiveNode
	dDropNoHealthyPort
	dDropRxQueueFull
	dDropClosed
	numDriverDropReasons
)

var driverDropName = [numDriverDropReasons]string{
	dDropNone:            "",
	dDropParseError:      "parse_error",
	dDropNoRoute:         "no_route",
	dDropClusterDisabled: "cluster_disabled",
	dDropNoLiveNode:      "no_live_node",
	dDropNoHealthyPort:   "no_healthy_port",
	dDropRxQueueFull:     "rx_queue_full",
	dDropClosed:          "driver_closed",
}

// driverCounters is the driver's live counter block; every cell is atomic
// so Stats and the metrics scrape read coherently while submitters and
// workers run.
type driverCounters struct {
	accepted atomic.Uint64
	dropped  atomic.Uint64
	drops    [numDriverDropReasons]atomic.Uint64
}

// DriverStats is a snapshot of the driver's submission accounting.
// Accepted + Dropped equals the number of packets ever handed to Submit
// or SubmitBatch (each submitted packet lands in exactly one bucket).
type DriverStats struct {
	Accepted    uint64
	Dropped     uint64
	DropReasons map[string]uint64
}

type job struct {
	// raw points at the pooled backing buffer holding the packet copy; the
	// worker returns it to bufPool after processing.
	raw  *[]byte
	now  time.Time
	node *Node
	meta Result
	// fh and vni carry the front parse's flow identity so queue-level drops
	// (tail drop, submit-after-close) can emit flight-recorder events
	// without reparsing the copied bytes.
	fh  uint64
	vni netpkt.VNI
}

type jobBatch struct {
	jobs []job
}

// batchScratch is the per-SubmitBatch grouping state: parallel slices
// mapping each destination node seen in the batch to its accumulating
// jobBatch. A linear scan replaces the old per-call map — batches touch a
// handful of nodes, and recycling the slices through a pool keeps the
// steady-state submission path allocation-free even with concurrent
// submitters.
type batchScratch struct {
	nodes  []*Node
	groups []*jobBatch
}

// resultBatch carries one processed jobBatch's outcomes from a worker to
// the demux goroutine, so workers pay one channel operation per batch.
type resultBatch struct {
	res []DriverResult
}

// DriverResult is one packet's outcome from the concurrent path.
type DriverResult struct {
	Result Result
	Err    error
}

// NewDriver builds a driver over the region's current live topology.
// queueDepth bounds each node's RX queue (in batches); a full queue drops
// the batch (tail drop, as a NIC would).
func NewDriver(r *Region, queueDepth int) *Driver {
	if queueDepth <= 0 {
		queueDepth = 256
	}
	// Worst-case in-flight batches: every node RX queue full plus the
	// result queue; buffers scale that by the jobs-per-batch pre-size.
	// Freelists that cover the whole population make recycling GC-proof
	// end to end (see the field comment).
	qcount := 0
	for _, c := range r.Clusters {
		qcount += len(c.Nodes) + len(c.Backup.Nodes)
	}
	inflight := qcount*queueDepth + queueDepth*2
	bufSlots := inflight * defaultBatchCap
	if bufSlots > maxBufFreeSlots {
		bufSlots = maxBufFreeSlots
	}
	d := &Driver{
		region:    r,
		queues:    make(map[string]chan *jobBatch),
		resultq:   make(chan *resultBatch, queueDepth*2),
		results:   make(chan DriverResult, queueDepth*4),
		depth:     queueDepth,
		batchFree: make(chan *jobBatch, inflight),
		resFree:   make(chan *resultBatch, queueDepth*2),
		bufFree:   make(chan *[]byte, bufSlots),
	}
	for _, c := range r.Clusters {
		for _, set := range [][]*Node{c.Nodes, c.Backup.Nodes} {
			for _, n := range set {
				q := make(chan *jobBatch, queueDepth)
				d.queues[n.ID] = q
				d.wg.Add(1)
				go d.worker(q)
			}
		}
	}
	d.demuxWG.Add(1)
	go d.demux()
	return d
}

// worker owns one gateway: packets are processed strictly in arrival order,
// preserving the single-threaded gateway invariant. Outcomes leave as one
// resultBatch per jobBatch. Region counters are updated per completed
// packet exactly as the single-shot path does, so Region.Stats stays in
// parity whichever path carried the traffic.
func (d *Driver) worker(q chan *jobBatch) {
	defer d.wg.Done()
	for b := range q {
		rb := d.getResultBatch()
		for i := range b.jobs {
			j := &b.jobs[i]
			res, err := j.node.GW.ProcessPacket(*j.raw, j.now)
			if err == nil {
				switch res.Action {
				case xgwh.ActionForward:
					d.region.stats.forwarded.Add(1)
				case xgwh.ActionDrop:
					d.region.stats.dropped.Add(1)
				case xgwh.ActionFallback:
					d.region.stats.fallback.Add(1)
				}
			}
			out := j.meta
			out.GW = res
			rb.res = append(rb.res, DriverResult{Result: out, Err: err})
			d.putBuf(j.raw)
			j.raw = nil
		}
		d.putBatch(b)
		d.resultq <- rb
	}
}

// demux fans worker result batches out onto the public per-result channel.
func (d *Driver) demux() {
	defer d.demuxWG.Done()
	for rb := range d.resultq {
		for i := range rb.res {
			d.results <- rb.res[i]
		}
		d.putResultBatch(rb)
	}
}

func (d *Driver) getBatch() *jobBatch {
	select {
	case b := <-d.batchFree:
		return b
	default:
	}
	if b, _ := d.batchPool.Get().(*jobBatch); b != nil {
		return b
	}
	return &jobBatch{jobs: make([]job, 0, defaultBatchCap)}
}

// putBatch recycles an emptied batch: freelist first, pool overflow.
func (d *Driver) putBatch(b *jobBatch) {
	b.jobs = b.jobs[:0]
	select {
	case d.batchFree <- b:
	default:
		d.batchPool.Put(b)
	}
}

// getBuf returns a recycled buffer resized to n bytes.
func (d *Driver) getBuf(n int) *[]byte {
	var p *[]byte
	select {
	case p = <-d.bufFree:
	default:
		p, _ = d.bufPool.Get().(*[]byte)
	}
	if p == nil {
		b := make([]byte, n, max(n, defaultBufCap))
		return &b
	}
	if cap(*p) < n {
		*p = make([]byte, n, max(n, defaultBufCap))
	} else {
		*p = (*p)[:n]
	}
	return p
}

// putBuf recycles a packet buffer: freelist first, pool overflow.
func (d *Driver) putBuf(p *[]byte) {
	select {
	case d.bufFree <- p:
	default:
		d.bufPool.Put(p)
	}
}

func (d *Driver) getResultBatch() *resultBatch {
	select {
	case rb := <-d.resFree:
		return rb
	default:
	}
	if rb, _ := d.resPool.Get().(*resultBatch); rb != nil {
		return rb
	}
	return &resultBatch{res: make([]DriverResult, 0, defaultBatchCap)}
}

// putResultBatch recycles an emptied result batch: freelist first, pool
// overflow.
func (d *Driver) putResultBatch(rb *resultBatch) {
	rb.res = rb.res[:0]
	select {
	case d.resFree <- rb:
	default:
		d.resPool.Put(rb)
	}
}

func (d *Driver) getScratch() *batchScratch {
	if s, _ := d.scratchPool.Get().(*batchScratch); s != nil {
		return s
	}
	return &batchScratch{}
}

func (d *Driver) putScratch(s *batchScratch) {
	s.nodes = s.nodes[:0]
	s.groups = s.groups[:0]
	d.scratchPool.Put(s)
}

// recycle returns a batch's buffers and the batch itself to their pools
// without processing (used on tail drop).
func (d *Driver) recycle(b *jobBatch) {
	for i := range b.jobs {
		d.putBuf(b.jobs[i].raw)
		b.jobs[i].raw = nil
	}
	d.putBatch(b)
}

// drop accounts n packets lost for the given reason, both in the driver's
// own taxonomy and in the region counters so Region.Stats matches what the
// single-shot path would have recorded for the same packets: steering
// misses land in NoRoute, everything else (including RX-queue tail drops
// and submits after Close, which have no single-shot analog but are still
// lost packets) lands in Dropped.
func (d *Driver) drop(reason uint8, n uint64) {
	d.stats.drops[reason].Add(n)
	d.stats.dropped.Add(n)
	if reason == dDropNoRoute {
		d.region.stats.noRoute.Add(n)
	} else {
		d.region.stats.dropped.Add(n)
	}
}

// route takes the submitting-side decision for one packet — lightweight
// front parse, steering, node and egress-port pick, all off a single flow
// hash — copies the bytes into a pooled buffer and fills j. It returns
// dDropNone on success or the reason the packet is unroutable (the caller
// accounts the counter; route itself emits the flight-recorder drop event,
// which is always-on, and the sampled steered event on success).
func (d *Driver) route(raw []byte, now time.Time, j *job) uint8 {
	var fm netpkt.FrontMeta
	if err := netpkt.ParseFront(raw, &fm); err != nil {
		d.traceDriverDrop(dDropParseError, 0, 0, 0, now)
		return dDropParseError
	}
	flowHash := fm.Flow.FastHash()
	clusterID, nodeIdx, err := d.region.FrontEnd.Route(fm.VNI, flowHash)
	if err != nil {
		d.traceDriverDrop(dDropNoRoute, flowHash, fm.VNI, 0, now)
		return dDropNoRoute
	}
	if !d.region.ClusterEnabled(clusterID) {
		d.traceDriverDrop(dDropClusterDisabled, flowHash, fm.VNI, 0, now)
		return dDropClusterDisabled
	}
	c := d.region.serving(clusterID)
	live := c.LiveNodes()
	if len(live) == 0 {
		d.traceDriverDrop(dDropNoLiveNode, flowHash, fm.VNI, 0, now)
		return dDropNoLiveNode
	}
	node := live[nodeIdx%len(live)]
	port, ok := node.PickPort(flowHash)
	if !ok {
		d.traceDriverDrop(dDropNoHealthyPort, flowHash, fm.VNI, node.trDev, now)
		return dDropNoHealthyPort
	}
	if hh := d.region.hh; hh != nil {
		hh.Observe(clusterID, fm.VNI, flowHash, fm.Flow.Dst, fm.WireLen)
	}
	if tr := d.region.tr; tr != nil && tr.Sampled(flowHash) {
		tr.Record(trace.Event{TimeNs: now.UnixNano(), FlowHash: flowHash,
			VNI: fm.VNI, Dev: node.trDev, Stage: trace.StageDriver, Verdict: trace.VerdictSteered})
	}
	cp := d.getBuf(len(raw))
	copy(*cp, raw)
	*j = job{raw: cp, now: now, node: node,
		meta: Result{ClusterID: clusterID, NodeID: node.ID, EgressPort: port},
		fh:   flowHash, vni: fm.VNI}
	return dDropNone
}

// traceDriverDrop emits one always-on flight-recorder drop event from the
// submission path. No-op when tracing is off.
func (d *Driver) traceDriverDrop(reason uint8, fh uint64, vni netpkt.VNI, dev uint16, now time.Time) {
	if tr := d.region.tr; tr != nil {
		tr.Record(trace.Event{TimeNs: now.UnixNano(), FlowHash: fh, VNI: vni,
			Dev: dev, Stage: trace.StageDriver, Verdict: trace.VerdictDrop, Code: reason})
	}
}

// traceDropBatch records drop events for every job in a batch about to be
// recycled unprocessed (RX tail drop or submit-after-close).
func (d *Driver) traceDropBatch(b *jobBatch, reason uint8) {
	if d.region.tr == nil {
		return
	}
	for i := range b.jobs {
		j := &b.jobs[i]
		d.traceDriverDrop(reason, j.fh, j.vni, j.node.trDev, j.now)
	}
}

// Submit routes the packet and enqueues it to its node as a batch of one.
// It reports false when the packet was dropped — at routing, by a full
// queue, or because the driver is closed — and every such drop is counted
// by reason. The raw slice is copied; callers may reuse their buffer.
func (d *Driver) Submit(raw []byte, now time.Time) bool {
	var j job
	if reason := d.route(raw, now, &j); reason != dDropNone {
		d.drop(reason, 1)
		return false
	}
	b := d.getBatch()
	b.jobs = append(b.jobs, j)
	d.mu.RLock()
	if d.closed {
		d.mu.RUnlock()
		d.traceDropBatch(b, dDropClosed)
		d.recycle(b)
		d.drop(dDropClosed, 1)
		return false
	}
	select {
	case d.queues[j.node.ID] <- b:
		d.mu.RUnlock()
		d.stats.accepted.Add(1)
		return true
	default:
		d.mu.RUnlock()
		d.traceDropBatch(b, dDropRxQueueFull)
		d.recycle(b) // RX queue overflow: tail drop
		d.drop(dDropRxQueueFull, 1)
		return false
	}
}

// SubmitBatch routes a batch of packets and enqueues them grouped per node,
// so each node's RX queue is hit once per batch instead of once per packet.
// Unroutable packets are skipped (and counted by reason); a full node queue
// tail-drops that node's whole group; after Close every packet is rejected.
// It returns the number of packets accepted. Raw slices are copied into
// pooled buffers; callers may reuse them immediately.
func (d *Driver) SubmitBatch(raws [][]byte, now time.Time) int {
	s := d.getScratch()
	for _, raw := range raws {
		var j job
		if reason := d.route(raw, now, &j); reason != dDropNone {
			d.drop(reason, 1)
			continue
		}
		var b *jobBatch
		for i, n := range s.nodes {
			if n == j.node {
				b = s.groups[i]
				break
			}
		}
		if b == nil {
			b = d.getBatch()
			s.nodes = append(s.nodes, j.node)
			s.groups = append(s.groups, b)
		}
		b.jobs = append(b.jobs, j)
	}
	accepted := 0
	d.mu.RLock()
	if d.closed {
		d.mu.RUnlock()
		for _, b := range s.groups {
			n := uint64(len(b.jobs))
			d.traceDropBatch(b, dDropClosed)
			d.recycle(b)
			d.drop(dDropClosed, n)
		}
		d.putScratch(s)
		return 0
	}
	for i, node := range s.nodes {
		b := s.groups[i]
		n := len(b.jobs) // before the send: the worker owns b afterwards
		select {
		case d.queues[node.ID] <- b:
			accepted += n
			d.stats.accepted.Add(uint64(n))
		default:
			d.traceDropBatch(b, dDropRxQueueFull)
			d.recycle(b) // RX queue overflow: tail drop the group
			d.drop(dDropRxQueueFull, uint64(n))
		}
	}
	d.mu.RUnlock()
	d.putScratch(s)
	return accepted
}

// Results delivers packet outcomes; read until Close's drain completes.
func (d *Driver) Results() <-chan DriverResult { return d.results }

// Stats returns a snapshot of the driver's submission accounting. Each cell
// is read atomically, so it is safe (and exact per counter) while
// submitters and workers run. The DropReasons map is materialized per call.
func (d *Driver) Stats() DriverStats {
	s := DriverStats{
		Accepted: d.stats.accepted.Load(),
		Dropped:  d.stats.dropped.Load(),
	}
	s.DropReasons = make(map[string]uint64, numDriverDropReasons)
	for code := 1; code < int(numDriverDropReasons); code++ {
		if n := d.stats.drops[code].Load(); n > 0 {
			s.DropReasons[driverDropName[code]] = n
		}
	}
	return s
}

// ResetStats zeroes the driver counters. Safe under live submission.
func (d *Driver) ResetStats() {
	d.stats.accepted.Store(0)
	d.stats.dropped.Store(0)
	for code := range d.stats.drops {
		d.stats.drops[code].Store(0)
	}
}

// DriverDropReasonNames returns the stable taxonomy of driver drop reasons,
// in code order — the label set the metrics exposition publishes even
// before a reason has fired.
func DriverDropReasonNames() []string {
	out := make([]string, 0, numDriverDropReasons-1)
	for code := 1; code < int(numDriverDropReasons); code++ {
		out = append(out, driverDropName[code])
	}
	return out
}

// RegisterMetrics publishes the driver's submission counters, per-reason
// drops, and live queue-depth gauges into a registry. Values are read
// atomically (channel lengths via len, which is safe concurrently) at
// scrape time; nothing is added to the per-packet path.
func (d *Driver) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("sailfish_driver_accepted_total", "packets accepted into node RX queues", nil,
		d.stats.accepted.Load)
	reg.CounterFunc("sailfish_driver_dropped_total", "packets dropped at submission", nil,
		d.stats.dropped.Load)
	for code := 1; code < int(numDriverDropReasons); code++ {
		c := &d.stats.drops[code]
		reg.CounterFunc("sailfish_driver_drops_total", "packets dropped at submission by reason",
			metrics.Labels{"reason": driverDropName[code]}, c.Load)
	}
	reg.GaugeFunc("sailfish_driver_queue_capacity", "per-node RX queue capacity in batches", nil,
		func() float64 { return float64(d.depth) })
	for id, q := range d.queues {
		qq := q
		reg.GaugeFunc("sailfish_driver_queue_depth", "node RX queue occupancy in batches",
			metrics.Labels{"node": id}, func() float64 { return float64(len(qq)) })
	}
	reg.GaugeFunc("sailfish_driver_results_backlog", "undrained packet outcomes", nil,
		func() float64 { return float64(len(d.results)) })
}

// Close stops the workers after draining queued packets and closes the
// results channel. Submissions racing Close are rejected (counted as
// driver_closed drops) rather than panicking; Close is idempotent, though
// only the first call waits for the drain.
func (d *Driver) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.mu.Unlock()
	// Every submitter that saw closed==false has finished its send (the
	// write lock above waited them out), and every later one rejects, so
	// closing the queues cannot race a send.
	for _, q := range d.queues {
		close(q)
	}
	d.wg.Wait()
	close(d.resultq)
	d.demuxWG.Wait()
	close(d.results)
}
