package cluster

import (
	"sync"
	"time"

	"sailfish/internal/netpkt"
)

// Driver processes packets through a region concurrently: one worker
// goroutine per XGW-H node, matching the hardware reality that every chip
// is an independent pipeline while each chip processes its own packets
// serially. The front-end routing decision is taken on the submitting side
// (the load balancer is a separate device), then the packet is queued to
// its node's worker.
//
// The Driver serves the steady state: control-plane mutations (installs,
// failovers) must not run concurrently with Submit, just as production
// quiesces a node before reprogramming it.
type Driver struct {
	region  *Region
	queues  map[string]chan job
	results chan DriverResult
	wg      sync.WaitGroup
	depth   int
}

type job struct {
	raw  []byte
	now  time.Time
	node *Node
	meta Result
}

// DriverResult is one packet's outcome from the concurrent path.
type DriverResult struct {
	Result Result
	Err    error
}

// NewDriver builds a driver over the region's current live topology.
// queueDepth bounds each node's RX queue; a full queue drops the packet
// (tail drop, as a NIC would).
func NewDriver(r *Region, queueDepth int) *Driver {
	if queueDepth <= 0 {
		queueDepth = 256
	}
	d := &Driver{
		region:  r,
		queues:  make(map[string]chan job),
		results: make(chan DriverResult, queueDepth*4),
		depth:   queueDepth,
	}
	for _, c := range r.Clusters {
		for _, set := range [][]*Node{c.Nodes, c.Backup.Nodes} {
			for _, n := range set {
				q := make(chan job, queueDepth)
				d.queues[n.ID] = q
				d.wg.Add(1)
				go d.worker(q)
			}
		}
	}
	return d
}

// worker owns one gateway: packets are processed strictly in arrival order,
// preserving the single-threaded gateway invariant.
func (d *Driver) worker(q chan job) {
	defer d.wg.Done()
	for j := range q {
		res, err := j.node.GW.ProcessPacket(j.raw, j.now)
		out := j.meta
		out.GW = res
		d.results <- DriverResult{Result: out, Err: err}
	}
}

// Submit routes the packet and enqueues it to its node. It reports false
// when the packet was dropped at routing or by a full queue. The raw slice
// is copied; callers may reuse their buffer.
func (d *Driver) Submit(raw []byte, now time.Time) bool {
	var parser netpkt.Parser
	var pkt netpkt.GatewayPacket
	if err := parser.Parse(raw, &pkt); err != nil {
		return false
	}
	flowHash := pkt.InnerFlow().FastHash()
	clusterID, nodeIdx, err := d.region.FrontEnd.Route(pkt.VXLAN.VNI, flowHash)
	if err != nil || !d.region.ClusterEnabled(clusterID) {
		return false
	}
	c := d.region.serving(clusterID)
	live := c.LiveNodes()
	if len(live) == 0 {
		return false
	}
	node := live[nodeIdx%len(live)]
	port, ok := node.PickPort(flowHash)
	if !ok {
		return false
	}
	cp := make([]byte, len(raw))
	copy(cp, raw)
	j := job{raw: cp, now: now, node: node,
		meta: Result{ClusterID: clusterID, NodeID: node.ID, EgressPort: port}}
	select {
	case d.queues[node.ID] <- j:
		return true
	default:
		return false // RX queue overflow: tail drop
	}
}

// Results delivers packet outcomes; read until Close's drain completes.
func (d *Driver) Results() <-chan DriverResult { return d.results }

// Close stops the workers after draining queued packets and closes the
// results channel.
func (d *Driver) Close() {
	for _, q := range d.queues {
		close(q)
	}
	d.wg.Wait()
	close(d.results)
}
