package cluster

import (
	"testing"

	"sailfish/internal/slo"
	"sailfish/internal/xgwh"
)

// TestRegionForwardZeroAllocWithSLO pins the ISSUE's acceptance bar for the
// SLO tentpole: attaching the per-tenant collector must not cost the
// forward fast path a single allocation. The collector's hot side is an
// atomic add into a pre-resolved cell — the copy-on-write tenant map is
// only rebuilt on Track, never per packet.
func TestRegionForwardZeroAllocWithSLO(t *testing.T) {
	r := NewRegion(smallConfig(), 1, 0)
	installTenant(t, r, 0, 100)
	col := slo.NewCollector()
	col.Track(100)
	r.EnableSLO(col)
	raw := buildPacket(t, 100, "192.168.0.1", "192.168.0.5")
	now := t0()
	allocs := testing.AllocsPerRun(200, func() {
		res, err := r.ProcessPacket(raw, now)
		if err != nil {
			t.Fatal(err)
		}
		if res.GW.Action != xgwh.ActionForward {
			t.Fatalf("action = %v", res.GW.Action)
		}
	})
	if allocs != 0 {
		t.Fatalf("forward path with SLO collector allocates %.1f per packet, want 0", allocs)
	}
	if c, ok := col.Snapshot(100); !ok || c.Forwarded == 0 {
		t.Fatalf("collector saw nothing: %+v ok=%v", c, ok)
	}
}

// TestRegionSLOLedgerParity checks the lane's booking discipline packet by
// packet: every disposition the region ledger records lands in the SLO
// collector too, with no_route folded into the tenant's Dropped (a tenant's
// loss SLI counts every packet that did not come out the other side) and
// packets that die before VNI parse booked against the untracked cell.
func TestRegionSLOLedgerParity(t *testing.T) {
	r := NewRegion(smallConfig(), 2, 1)
	installTenant(t, r, 0, 100)
	installTenant(t, r, 1, 101)
	col := slo.NewCollector()
	col.Track(100)
	col.Track(101)
	r.EnableSLO(col)

	forward := buildPacket(t, 100, "192.168.0.1", "192.168.0.5")
	routeMiss := buildPacket(t, 100, "192.168.0.3", "10.9.9.9") // → fallback
	unsteered := buildPacket(t, 999, "192.168.0.1", "192.168.0.5")
	malformed := []byte{1, 2, 3}
	disabled := buildPacket(t, 101, "192.168.0.2", "192.168.0.5")
	r.SetClusterEnabled(1, false)

	for i := 0; i < 3; i++ {
		r.ProcessPacket(forward, t0())   //nolint:errcheck
		r.ProcessPacket(routeMiss, t0()) //nolint:errcheck
	}
	r.ProcessPacket(unsteered, t0()) //nolint:errcheck
	r.ProcessPacket(malformed, t0()) //nolint:errcheck
	r.ProcessPacket(disabled, t0())  //nolint:errcheck

	st := r.Stats()
	tot := col.Total()
	if tot.Forwarded != st.Forwarded || tot.Fallback != st.Fallback ||
		tot.FallbackMiss != st.FallbackMiss || tot.Degraded != st.Degraded {
		t.Fatalf("ledger mismatch:\nslo    %+v\nregion %+v", tot, st)
	}
	if want := st.Dropped + st.NoRoute; tot.Dropped != want {
		t.Fatalf("slo Dropped %d != region Dropped+NoRoute %d", tot.Dropped, want)
	}

	// Tenant attribution. VNI 100's route misses fell to the x86 pool,
	// which does not hold the route either (nothing mirrored it), so each
	// miss books fallback AND dropped — the lane's union semantics: a
	// booked fallback that then fails still counts as tenant loss.
	c100, _ := col.Snapshot(100)
	if c100.Forwarded != 3 || c100.Fallback != 3 || c100.FallbackMiss != 3 || c100.Dropped != 3 {
		t.Fatalf("vni 100 = %+v", c100)
	}
	c101, _ := col.Snapshot(101)
	if c101.Dropped != 1 || c101.Attempted() != 1 {
		t.Fatalf("vni 101 = %+v", c101)
	}
	// The unsteered VNI and the malformed packet (no VNI at all) land in
	// the untracked cell, not on any tenant.
	if u := col.Untracked(); u.Dropped != 2 {
		t.Fatalf("untracked = %+v", u)
	}
}
