// Package dataset embeds the public historical data the paper's Fig. 8
// plots: Intel desktop CPU single-core and multi-core benchmark scores (as
// reported by geekbench.com for the flagship i7 of each year) against
// top-of-rack switch port speeds, 2010-2020. The paper itself sources this
// from public data; we embed the same series so the figure regenerates
// offline.
package dataset

// CPUVsPortPoint is one year's sample.
type CPUVsPortPoint struct {
	Year       int
	SingleCore float64 // normalized benchmark score
	MultiCore  float64
	PortGbps   int    // flagship ToR switch port speed
	Switch     string // representative product
}

// Fig8 is the 2010-2020 series. Scores are in geekbench-5-style units;
// what the figure argues is the *ratio*: ports grew 40×, multi-core 4×,
// single-core only 2.5×.
var Fig8 = []CPUVsPortPoint{
	{2010, 520, 1900, 10, "Sun 10GbE Switch 72p"},
	{2012, 640, 2600, 40, ""},
	{2014, 780, 3300, 40, ""},
	{2016, 950, 4300, 100, "Mellanox SN2410"},
	{2018, 1100, 5900, 100, "Wedge 100BF-65X"},
	{2020, 1300, 7600, 400, "Cisco Nexus 9364D-GX2A"},
}

// GrowthFactors returns the 2010→2020 growth multiples the paper cites.
func GrowthFactors() (singleCore, multiCore, port float64) {
	first, last := Fig8[0], Fig8[len(Fig8)-1]
	return last.SingleCore / first.SingleCore,
		last.MultiCore / first.MultiCore,
		float64(last.PortGbps) / float64(first.PortGbps)
}
