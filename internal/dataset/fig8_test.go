package dataset

import "testing"

// The paper's reading of Fig. 8: "the port speed grew from 10GbE to 400GbE
// (40x), the multi-core performance improvement was 4x; however, the
// single-core improvement was only 2.5x."
func TestGrowthFactorsMatchPaper(t *testing.T) {
	single, multi, port := GrowthFactors()
	if port != 40 {
		t.Fatalf("port growth = %vx, want 40x", port)
	}
	if multi < 3.5 || multi > 4.5 {
		t.Fatalf("multi-core growth = %.1fx, want ≈4x", multi)
	}
	if single < 2.2 || single > 2.8 {
		t.Fatalf("single-core growth = %.1fx, want ≈2.5x", single)
	}
}

func TestSeriesMonotoneYears(t *testing.T) {
	for i := 1; i < len(Fig8); i++ {
		if Fig8[i].Year <= Fig8[i-1].Year {
			t.Fatal("years not increasing")
		}
		if Fig8[i].SingleCore < Fig8[i-1].SingleCore || Fig8[i].PortGbps < Fig8[i-1].PortGbps {
			t.Fatal("series not non-decreasing")
		}
	}
}
