// Package shardplane is the multi-core software data plane: an N-shard
// run-to-completion pipeline in front of a cluster.Region, shaped like the
// paper's XGW-x86 receive path — NIC RSS spreads flows across per-core
// queues and each core runs its packets to completion with no cross-core
// locks. Here the "NIC" is a single dispatcher goroutine hashing each
// packet's flow (the same steering flow hash the front end uses, so a flow's
// packets always land on one shard and SNAT/trace/heavy-hitter state keeps
// per-flow affinity), the per-core queue is a bounded SPSC ring with
// cache-line-padded positions, and each shard worker drives its own
// cluster.Lane: private packet scratch, private stats counters, and — when
// enabled — a private flight recorder and heavy-hitter tracker, all merged
// on scrape into the exact taxonomy the single-path region reports.
package shardplane

import (
	"sync/atomic"
)

// cacheLinePad keeps the producer- and consumer-owned ring positions on
// separate cache lines so the two sides never false-share.
type cacheLinePad [64]byte

// Ring is a bounded single-producer single-consumer packet queue. Payloads
// are stored inline: one backing arena of slots×maxPacket bytes allocated at
// construction, so pushing copies the frame and neither side ever touches
// the heap. The producer owns tail (and a cached view of head), the
// consumer owns head (and a cached view of tail); each position is read by
// the other side with a single atomic load only when its cached view runs
// out — the classic SPSC fast path of one store per op.
//
// Contract: exactly one goroutine calls Push and exactly one goroutine
// calls Peek/Advance. The Plane's dispatcher and shard workers uphold this.
type Ring struct {
	mask      uint64
	maxPacket int
	buf       []byte  // slot i's payload at buf[i*maxPacket:]
	lens      []int32 // slot payload lengths
	times     []int64 // slot packet clocks (UnixNano)

	_    cacheLinePad
	head atomic.Uint64 // next slot to consume; advanced by the consumer
	_    cacheLinePad
	tail atomic.Uint64 // next slot to fill; advanced by the producer
	_    cacheLinePad
	// cachedHead is the producer's last-seen head: the producer re-reads
	// head atomically only when the ring looks full against the cache.
	cachedHead uint64
	_          cacheLinePad
	// cachedTail is the consumer's last-seen tail, refreshed only when the
	// ring looks empty against the cache.
	cachedTail uint64
	_          cacheLinePad
}

// ceilPow2 rounds n up to a power of two, with a floor default.
func ceilPow2(n, def int) int {
	if n <= 0 {
		n = def
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewRing builds a ring of the given slot count (rounded up to a power of
// two, default 1024) and per-slot payload capacity (default 2048 bytes).
func NewRing(slots, maxPacket int) *Ring {
	slots = ceilPow2(slots, 1024)
	if maxPacket <= 0 {
		maxPacket = 2048
	}
	return &Ring{
		mask:      uint64(slots - 1),
		maxPacket: maxPacket,
		buf:       make([]byte, slots*maxPacket),
		lens:      make([]int32, slots),
		times:     make([]int64, slots),
	}
}

// Cap returns the ring's slot count.
func (r *Ring) Cap() int { return int(r.mask + 1) }

// MaxPacket returns the per-slot payload capacity.
func (r *Ring) MaxPacket() int { return r.maxPacket }

// Len returns the current queue depth. Exact for either ring endpoint; a
// (possibly slightly stale) snapshot for observers.
func (r *Ring) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Push copies one frame and its packet clock into the ring. It returns
// false — without blocking or spinning — when the ring is full or the frame
// exceeds the slot capacity; the caller owns backpressure. Producer side
// only.
func (r *Ring) Push(p []byte, nowNs int64) bool {
	if len(p) > r.maxPacket {
		return false
	}
	t := r.tail.Load() // own position: plain value, atomic for observers
	if t-r.cachedHead > r.mask {
		r.cachedHead = r.head.Load()
		if t-r.cachedHead > r.mask {
			return false // full
		}
	}
	i := t & r.mask
	copy(r.buf[int(i)*r.maxPacket:], p)
	r.lens[i] = int32(len(p))
	r.times[i] = nowNs
	r.tail.Store(t + 1) // release: publishes the payload to the consumer
	return true
}

// Peek returns the next frame and its packet clock without consuming it.
// The slice aliases the ring's arena and is valid until Advance. Consumer
// side only.
func (r *Ring) Peek() (p []byte, nowNs int64, ok bool) {
	h := r.head.Load()
	if h == r.cachedTail {
		r.cachedTail = r.tail.Load() // acquire: pairs with Push's store
		if h == r.cachedTail {
			return nil, 0, false // empty
		}
	}
	i := h & r.mask
	off := int(i) * r.maxPacket
	return r.buf[off : off+int(r.lens[i])], r.times[i], true
}

// Advance releases the slot returned by the last Peek back to the producer.
// Consumer side only.
func (r *Ring) Advance() {
	r.head.Store(r.head.Load() + 1)
}
