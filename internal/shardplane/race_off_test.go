//go:build !race

package shardplane

const raceEnabled = false
