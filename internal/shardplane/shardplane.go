package shardplane

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sailfish/internal/cluster"
	"sailfish/internal/heavyhitter"
	"sailfish/internal/metrics"
	"sailfish/internal/netpkt"
	"sailfish/internal/trace"
)

// Config sizes a Plane.
type Config struct {
	// Shards is the number of run-to-completion workers (default 1). Set it
	// to the core budget; each shard gets its own ring, lane and observers.
	Shards int
	// RingSlots is each shard's SPSC ring capacity (rounded up to a power
	// of two, default 1024 slots).
	RingSlots int
	// MaxPacket is the ring slot payload capacity (default 2048 bytes);
	// larger frames are rejected at submit and counted Oversize.
	MaxPacket int
	// Tracing, when non-nil, builds one flight recorder per shard from this
	// template and wires each into the region (Region.EnableTracing per
	// recorder, shard 0 last — so the region's own serial paths and
	// fallback nodes emit into shard 0's recorder). Every recorder interns
	// the same device table in the same order, which is what lets
	// DropCounts/Events merge them by summation. While a plane owns a
	// region's tracing, scrape trace state through the plane.
	Tracing *trace.Config
	// HeavyHitterK, when > 0, gives each shard its own SpaceSaving tracker
	// of that capacity; HeavyHitters() merges them on scrape.
	HeavyHitterK int
	// Sink, when set, is called on the shard's worker goroutine with every
	// packet's region-level outcome — the transmit half of run-to-
	// completion (the daemon writes UDP frames from it). It must not retain
	// res.GW.Out past the call and must not allocate if the plane's
	// 0 allocs/op property matters to the caller.
	Sink func(shard int, res cluster.Result, err error)
}

// Stats is a merged snapshot of the plane: the region-level taxonomy summed
// across shard lanes (identical shape to cluster.Region.Stats for the same
// traffic), plus the dispatch-side ring accounting.
type Stats struct {
	// Region is the merged per-lane accounting: forwards, fallbacks,
	// drops by front-end reason — the same totals a single-path run of the
	// same traffic would report from Region.Stats.
	Region cluster.RegionStats
	Shards int
	// Accepted counts frames the dispatcher enqueued; Processed counts
	// frames workers ran to completion. They differ only by in-flight ring
	// depth.
	Accepted  uint64
	Processed uint64
	// RingFull counts rejected Submit attempts against a full shard ring —
	// the backpressure signal (a retrying submitter increments it once per
	// failed attempt; a tail-dropping submitter once per lost frame).
	RingFull uint64
	// Oversize counts frames larger than the ring's slot capacity.
	Oversize uint64
	// Depth is the current total queue depth across shards.
	Depth int
}

// ShardStats is one shard's view of the same accounting.
type ShardStats struct {
	Region    cluster.RegionStats
	Accepted  uint64
	Processed uint64
	RingFull  uint64
	Oversize  uint64
	Depth     int
}

// planeShard is one worker's world: ring in, lane through, observers out.
type planeShard struct {
	id   int
	ring *Ring
	lane *cluster.Lane
	rec  *trace.Recorder
	hh   *heavyhitter.Tracker

	accepted  atomic.Uint64 // dispatcher-side
	ringFull  atomic.Uint64 // dispatcher-side
	oversize  atomic.Uint64 // dispatcher-side
	processed atomic.Uint64 // worker-side
}

// Plane runs a region across N run-to-completion shards. One goroutine (the
// dispatcher) calls Submit/SubmitBatch — it plays the NIC, hashing each
// frame's flow and pushing it onto the owning shard's SPSC ring; N worker
// goroutines drain their rings through per-shard cluster.Lanes. Scrape
// methods (Stats, DropCounts, Events, HeavyHitters, RegisterMetrics) are
// safe from any goroutine at any time.
//
// The control-plane quiescence contract is the Region's: table and mode
// mutations may not run concurrently with traffic (same rule the Driver
// documents).
type Plane struct {
	region *cluster.Region
	cfg    Config
	shards []*planeShard

	// mu serializes Close against in-flight Submit/SubmitBatch pushes, the
	// same discipline cluster.Driver uses: submitters hold the read side
	// across the ring push, Close takes the write side to flip closed, so
	// no frame can land in a ring after Close observed it — a racing
	// submit is rejected (Submit returns false) rather than stranding the
	// frame in a ring no worker will drain. closed stays atomic so the
	// worker poll loop reads it without the lock.
	mu     sync.RWMutex
	closed atomic.Bool
	wg     sync.WaitGroup
}

// New builds the plane over the region and starts its shard workers. Create
// the plane after the region is populated and traced/tracked observers are
// decided; the per-shard recorders and trackers are wired here, before any
// worker starts.
func New(region *cluster.Region, cfg Config) *Plane {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	p := &Plane{region: region, cfg: cfg}
	for i := 0; i < cfg.Shards; i++ {
		p.shards = append(p.shards, &planeShard{
			id:   i,
			ring: NewRing(cfg.RingSlots, cfg.MaxPacket),
			lane: region.NewLane(),
		})
	}
	if cfg.Tracing != nil {
		// Wire shard 0 last so the region's serial paths and the fallback
		// pool point at its recorder; every recorder interns the identical
		// device table, so per-shard events merge cleanly.
		for i := cfg.Shards - 1; i >= 0; i-- {
			rec := trace.New(*cfg.Tracing)
			region.EnableTracing(rec)
			p.shards[i].rec = rec
			p.shards[i].lane.EnableTracing(rec)
		}
	}
	if cfg.HeavyHitterK > 0 {
		for _, s := range p.shards {
			s.hh = heavyhitter.NewTracker(cfg.HeavyHitterK)
			s.lane.EnableHeavyHitters(s.hh)
		}
	}
	p.wg.Add(len(p.shards))
	for _, s := range p.shards {
		go p.worker(s)
	}
	return p
}

// Shards returns the shard count.
func (p *Plane) Shards() int { return len(p.shards) }

// ShardIndex maps a flow hash to its owning shard among n. The hash goes
// through the same 64-bit finalizer mix the SNAT store shards by (FNV-1a's
// low bits are weak for structured five-tuples), so real traffic spreads
// evenly and a flow's packets always land on one shard. Exported so other
// dispatchers (cmd/sailfish-gw's workers mode) shard exactly like the
// plane does.
func ShardIndex(hash uint64, n int) int {
	h := hash
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return int(h % uint64(n))
}

// shardFor maps a flow hash to its owning shard.
func (p *Plane) shardFor(hash uint64) *planeShard {
	return p.shards[ShardIndex(hash, len(p.shards))]
}

// Submit hashes one frame to its flow's shard and enqueues it — the RSS
// step. It returns false without enqueuing when the plane is closed, the
// frame exceeds the slot capacity (counted Oversize) or the shard ring is
// full (counted RingFull); the caller chooses between retrying and tail-
// dropping. Safe against a concurrent Close (the rejection is clean — no
// frame is ever stranded in a ring after Close returns); ring pushes
// themselves remain single-dispatcher-goroutine only. Allocation-free.
func (p *Plane) Submit(raw []byte, now time.Time) bool {
	if p.closed.Load() {
		return false
	}
	var s *planeShard
	var fm netpkt.FrontMeta
	if err := netpkt.ParseFront(raw, &fm); err != nil {
		// No flow identity to hash: shard 0 carries the frame so the lane
		// books the parse_error drop under the normal front taxonomy.
		s = p.shards[0]
	} else {
		s = p.shardFor(fm.Flow.FastHash())
	}
	if len(raw) > s.ring.maxPacket {
		s.oversize.Add(1)
		return false
	}
	// Hold the read side across the push so Close's write lock waits out
	// an in-flight enqueue before workers are told to drain and exit.
	p.mu.RLock()
	if p.closed.Load() {
		p.mu.RUnlock()
		return false
	}
	ok := s.ring.Push(raw, now.UnixNano())
	p.mu.RUnlock()
	if !ok {
		s.ringFull.Add(1)
		return false
	}
	s.accepted.Add(1)
	return true
}

// SubmitBatch submits each frame in order, returning how many were
// enqueued. Rejected frames are counted (RingFull/Oversize) and skipped —
// NIC tail-drop semantics; use Submit per frame to retry instead.
func (p *Plane) SubmitBatch(raws [][]byte, now time.Time) int {
	accepted := 0
	for _, raw := range raws {
		if p.Submit(raw, now) {
			accepted++
		}
	}
	return accepted
}

// worker is one shard's run-to-completion loop: drain the ring through the
// lane, hand each outcome to the sink, back off when idle (spin → yield →
// sleep, so an idle plane doesn't burn its cores).
func (p *Plane) worker(s *planeShard) {
	defer p.wg.Done()
	sink := p.cfg.Sink
	idle := 0
	for {
		raw, ns, ok := s.ring.Peek()
		if !ok {
			if p.closed.Load() {
				// A submit racing Close may have pushed between the failed
				// Peek above and the closed flip; no push can start after
				// closed (Close's write lock waited the in-flight ones
				// out), so one re-check after observing closed suffices.
				if _, _, again := s.ring.Peek(); again {
					continue
				}
				return
			}
			idle++
			switch {
			case idle < 64:
				// spin: the dispatcher is usually mid-burst
			case idle < 256:
				runtime.Gosched()
			default:
				time.Sleep(20 * time.Microsecond)
			}
			continue
		}
		idle = 0
		res, err := s.lane.Process(raw, time.Unix(0, ns))
		if sink != nil {
			sink(s.id, res, err)
		}
		s.ring.Advance()
		s.processed.Add(1)
	}
}

// Close stops the intake and waits for every shard to drain and exit.
// Submissions racing Close are rejected (Submit returns false) rather than
// stranding frames, so Close is safe from any goroutine; idempotent, though
// only the first call waits for the drain.
func (p *Plane) Close() {
	p.mu.Lock()
	if !p.closed.CompareAndSwap(false, true) {
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	// Every submitter that saw closed==false has finished its push (the
	// write lock above waited them out), and every later one rejects, so
	// the rings only drain from here.
	p.wg.Wait()
}

// Drain blocks until every accepted frame has been processed — the
// scrape-before-assert step for tests and benchmarks that keep the plane
// open. Single dispatcher goroutine only (in-flight Submits would move the
// goal).
func (p *Plane) Drain() {
	for _, s := range p.shards {
		for s.ring.Len() > 0 {
			runtime.Gosched()
		}
		// The worker advances the ring before bumping processed; spin the
		// last packet's accounting in too.
		for s.processed.Load() < s.accepted.Load() {
			runtime.Gosched()
		}
	}
}

// Stats returns the merged snapshot: per-lane region taxonomy summed across
// shards plus dispatch-side ring accounting. Safe under live traffic.
func (p *Plane) Stats() Stats {
	st := Stats{Shards: len(p.shards)}
	for _, s := range p.shards {
		s.lane.AddStatsInto(&st.Region)
		st.Accepted += s.accepted.Load()
		st.Processed += s.processed.Load()
		st.RingFull += s.ringFull.Load()
		st.Oversize += s.oversize.Load()
		st.Depth += s.ring.Len()
	}
	return st
}

// ShardStats returns each shard's own view, in shard order.
func (p *Plane) ShardStats() []ShardStats {
	out := make([]ShardStats, len(p.shards))
	for i, s := range p.shards {
		out[i] = ShardStats{
			Region:    s.lane.Stats(),
			Accepted:  s.accepted.Load(),
			Processed: s.processed.Load(),
			RingFull:  s.ringFull.Load(),
			Oversize:  s.oversize.Load(),
			Depth:     s.ring.Len(),
		}
	}
	return out
}

// Recorders returns the per-shard flight recorders (nil-free; empty when
// tracing is off). Shard 0's recorder is also the region's.
func (p *Plane) Recorders() []*trace.Recorder {
	var out []*trace.Recorder
	for _, s := range p.shards {
		if s.rec != nil {
			out = append(out, s.rec)
		}
	}
	return out
}

// DropCounts merges the per-shard recorders' cumulative drop tallies — the
// sharded equivalent of Recorder.DropCounts, reconciling exactly against
// the merged stats taxonomy.
func (p *Plane) DropCounts() []trace.DropCount {
	return trace.MergeDropCounts(p.Recorders()...)
}

// Events merges the per-shard recorders' rings into one timestamp-ordered
// stream (f.Limit applies to the merged result).
func (p *Plane) Events(f trace.Filter) []trace.Event {
	return trace.MergeEvents(f, p.Recorders()...)
}

// HeavyHitters merges the per-shard trackers into one scrape-time view; nil
// when HeavyHitterK was 0. Flows shard wholly, so merged counts are exact
// for them; see heavyhitter.Merge for route-entry semantics.
func (p *Plane) HeavyHitters() *heavyhitter.Tracker {
	if p.cfg.HeavyHitterK <= 0 {
		return nil
	}
	var hhs []*heavyhitter.Tracker
	for _, s := range p.shards {
		hhs = append(hhs, s.hh)
	}
	return heavyhitter.Merge(p.cfg.HeavyHitterK, hhs...)
}

// RegisterMetrics publishes the merged region taxonomy under the same
// sailfish_region_* families Region.RegisterMetrics uses — in a sharded
// deployment register the plane instead of the region — plus per-shard
// sailfish_shardplane_* intake counters and ring-depth gauges. Values are
// merged at scrape time.
func (p *Plane) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("sailfish_region_forwarded_total", "packets forwarded by XGW-H nodes", nil,
		func() uint64 { return p.Stats().Region.Forwarded })
	reg.CounterFunc("sailfish_region_fallback_total", "packets steered to the XGW-x86 pool", nil,
		func() uint64 { return p.Stats().Region.Fallback })
	reg.CounterFunc("sailfish_region_dropped_total", "packets dropped region-wide", nil,
		func() uint64 { return p.Stats().Region.Dropped })
	reg.CounterFunc("sailfish_region_noroute_total", "packets with no steering rule", nil,
		func() uint64 { return p.Stats().Region.NoRoute })
	reg.CounterFunc("sailfish_region_degraded_total", "packets carried by the pool for degraded clusters", nil,
		func() uint64 { return p.Stats().Region.Degraded })
	reg.CounterFunc("sailfish_region_fallback_miss_total", "fallbacks caused by hardware table misses", nil,
		func() uint64 { return p.Stats().Region.FallbackMiss })
	reg.CounterFunc("sailfish_region_fallback_miss_total", "hardware table misses absorbed by the DPU tier",
		metrics.Labels{"tier": "dpu"},
		func() uint64 { return p.Stats().Region.DPUServed })
	reg.CounterFunc("sailfish_region_fallback_miss_total", "hardware table misses carried by the x86 pool",
		metrics.Labels{"tier": "x86"},
		func() uint64 { return p.Stats().Region.FallbackMissX86 })
	reg.GaugeFunc("sailfish_region_stack_coverage", "share of route-resolved packets served by XGW-H plus the DPU tier", nil,
		func() float64 {
			st := p.Stats().Region
			fwd := float64(st.Forwarded + st.DPUServed)
			denom := float64(st.Forwarded + st.FallbackMiss)
			if denom == 0 {
				return 0
			}
			return fwd / denom
		})
	for _, reason := range cluster.FrontDropReasonNames() {
		name := reason
		reg.CounterFunc("sailfish_region_front_drops_total", "front-end drops by reason",
			metrics.Labels{"reason": name},
			func() uint64 { return p.Stats().Region.FrontDrops[name] })
	}
	for _, s := range p.shards {
		sh := s
		lbl := metrics.Labels{"shard": fmt.Sprint(sh.id)}
		reg.CounterFunc("sailfish_shardplane_accepted_total", "frames enqueued to the shard ring", lbl,
			sh.accepted.Load)
		reg.CounterFunc("sailfish_shardplane_processed_total", "frames run to completion by the shard", lbl,
			sh.processed.Load)
		reg.CounterFunc("sailfish_shardplane_ring_full_total", "submits rejected by a full shard ring", lbl,
			sh.ringFull.Load)
		reg.GaugeFunc("sailfish_shardplane_ring_depth", "current shard ring depth", lbl,
			func() float64 { return float64(sh.ring.Len()) })
	}
}
