package shardplane

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sailfish/internal/cluster"
	"sailfish/internal/heavyhitter"
	"sailfish/internal/metrics"
	"sailfish/internal/netpkt"
	"sailfish/internal/tables"
	"sailfish/internal/trace"
)

func addr(s string) netip.Addr  { return netip.MustParseAddr(s) }
func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func t0() time.Time             { return time.Unix(0, 0) }

func smallConfig() cluster.Config {
	c := cluster.DefaultConfig()
	c.NodesPerCluster = 3
	c.EntryCapacity = 1000
	return c
}

// buildFlowPacket builds one encapsulated frame; src and srcPort vary the
// five-tuple so tests can spread (or pin) flows across shards.
func buildFlowPacket(t testing.TB, vni netpkt.VNI, src, dst string, srcPort uint16) []byte {
	t.Helper()
	b := netpkt.NewSerializeBuffer(128, 256)
	raw, err := (&netpkt.BuildSpec{
		VNI:      vni,
		OuterSrc: addr("10.1.1.11"), OuterDst: addr("10.255.0.1"),
		InnerSrc: addr(src), InnerDst: addr(dst),
		Proto: netpkt.IPProtocolTCP, SrcPort: srcPort, DstPort: 80,
	}).Build(b)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(raw))
	copy(out, raw)
	return out
}

// installTenant wires one tenant into a region cluster + steering.
func installTenant(t testing.TB, r *cluster.Region, id int, vni netpkt.VNI) {
	t.Helper()
	c := r.Clusters[id]
	if err := c.InstallRoute(vni, pfx("192.168.0.0/16"), tables.Route{Scope: tables.ScopeLocal}); err != nil {
		t.Fatal(err)
	}
	if err := c.InstallVM(vni, addr("192.168.0.5"), addr("100.64.0.5")); err != nil {
		t.Fatal(err)
	}
	r.FrontEnd.Steering.Assign(vni, id)
}

// submitAll pushes every frame, retrying on ring backpressure.
func submitAll(t testing.TB, p *Plane, raws [][]byte) {
	t.Helper()
	for _, raw := range raws {
		for i := 0; !p.Submit(raw, t0()); i++ {
			if i > 1_000_000 {
				t.Fatal("submit stuck: ring never drained")
			}
			runtime.Gosched()
		}
	}
}

// nonzero filters a reason map down to its nonzero entries.
func nonzero(m map[string]uint64) map[string]uint64 {
	out := map[string]uint64{}
	for k, v := range m {
		if v > 0 {
			out[k] = v
		}
	}
	return out
}

// sumReasons merges per-subsystem reason maps, dropping zero cells.
func sumReasons(ms ...map[string]uint64) map[string]uint64 {
	out := map[string]uint64{}
	for _, m := range ms {
		for k, v := range m {
			out[k] += v
		}
	}
	return nonzero(out)
}

// mergedReasons materializes one stage of a merged drop tally as a
// reason→count map.
func mergedReasons(dcs []trace.DropCount, st trace.Stage) map[string]uint64 {
	m := map[string]uint64{}
	for _, dc := range dcs {
		if dc.Stage == st {
			m[dc.Reason] = dc.Count
		}
	}
	return m
}

// buildParityWorld builds one copy of the seeded mixed-workload deployment:
// five clusters (forwarding, disabled, no live nodes, no healthy ports,
// degraded-onto-the-pool), a two-node XGW-x86 pool that owns the degraded
// tenant and a demoted tenant's tables, and a rate-shaped tenant whose
// token budget admits only part of its traffic. The returned packet list is
// deterministically shuffled, so two calls yield byte-identical worlds —
// the reference and sharded runs of the parity tests.
func buildParityWorld(t testing.TB) (*cluster.Region, [][]byte) {
	t.Helper()
	r := cluster.NewRegion(smallConfig(), 5, 2)
	for id, vni := range []netpkt.VNI{100, 101, 102, 103, 104} {
		installTenant(t, r, id, vni)
	}
	r.SetClusterEnabled(1, false)
	for i := range r.Clusters[2].Nodes {
		r.Clusters[2].FailNode(i)
	}
	for _, n := range r.Clusters[3].Nodes {
		for p := 0; p < cluster.PortsPerNode; p++ {
			n.FailPort(p)
		}
	}
	if !r.SetDegraded(4, true) {
		t.Fatal("SetDegraded(4) refused")
	}

	// Tenant 105: installed then demoted from hardware — its packets take
	// the §5 residency fallback. The pool holds 104's and 105's tables; a
	// 105 packet for a VM the pool never learned dies there.
	installTenant(t, r, 0, 105)
	if !r.Clusters[0].RemoveVM(105, addr("192.168.0.5")) {
		t.Fatal("demote: VM not resident in hardware")
	}
	for _, fb := range r.Fallback {
		for _, vni := range []netpkt.VNI{104, 105} {
			fb.Routes.Insert(vni, pfx("192.168.0.0/16"), tables.Route{Scope: tables.ScopeLocal})
			fb.VMNC.Insert(vni, addr("192.168.0.5"), addr("100.64.0.5"))
		}
	}

	// Tenant 107: SLA-shaped on every cluster-0 node with a burst that
	// admits exactly two of its packets per node at the fixed test clock
	// (rate 0 = no refill), so part of its traffic drops meter_exceeded.
	installTenant(t, r, 0, 107)
	shapedLen := len(buildFlowPacket(t, 107, "192.168.3.1", "192.168.0.5", 2000))
	for _, n := range r.Clusters[0].AllNodes() {
		n.GW.InstallShape(107, 0, float64(2*shapedLen))
	}

	var raws [][]byte
	// 24 forwarding flows, 8 packets each.
	for f := 0; f < 24; f++ {
		p := buildFlowPacket(t, 100, fmt.Sprintf("192.168.1.%d", f+1), "192.168.0.5", uint16(1000+f))
		for k := 0; k < 8; k++ {
			raws = append(raws, p)
		}
	}
	// Six shaped flows, four packets each: 24 packets against a two-per-
	// node budget.
	for f := 0; f < 6; f++ {
		p := buildFlowPacket(t, 107, fmt.Sprintf("192.168.3.%d", f+1), "192.168.0.5", uint16(2000+f))
		for k := 0; k < 4; k++ {
			raws = append(raws, p)
		}
	}
	// Four rounds of every drop and fallback shape, each round its own
	// flows.
	for i := 0; i < 4; i++ {
		src := fmt.Sprintf("192.168.2.%d", i+1)
		sport := uint16(3000 + i)
		raws = append(raws,
			[]byte{1, 2, 3}, // front parse_error
			buildFlowPacket(t, 999, src, "192.168.0.5", sport),  // no_route
			buildFlowPacket(t, 101, src, "192.168.0.5", sport),  // cluster_disabled
			buildFlowPacket(t, 102, src, "192.168.0.5", sport),  // no_live_node
			buildFlowPacket(t, 103, src, "192.168.0.5", sport),  // no_healthy_port
			buildFlowPacket(t, 104, src, "192.168.0.5", sport),  // degraded → pool carries
			buildFlowPacket(t, 105, src, "192.168.0.5", sport),  // demoted → fallback miss, pool completes
			buildFlowPacket(t, 105, src, "192.168.0.99", sport), // demoted → pool no_vm → fallback_error
		)
	}
	rand.New(rand.NewSource(7)).Shuffle(len(raws), func(i, j int) {
		raws[i], raws[j] = raws[j], raws[i]
	})
	return r, raws
}

// gwTotals sums forwarded/dropped and per-reason drops across every
// hardware gateway of the region (main and backup halves).
func gwTotals(r *cluster.Region) (fwd, drop uint64, reasons map[string]uint64) {
	reasons = map[string]uint64{}
	for _, c := range r.Clusters {
		for _, n := range c.AllNodes() {
			st := n.GW.Stats()
			fwd += st.Forwarded
			drop += st.Dropped
			for k, v := range st.DropReasons {
				reasons[k] += v
			}
		}
	}
	return fwd, drop, nonzero(reasons)
}

func TestShardPlaneForwardAndFlowAffinity(t *testing.T) {
	r := cluster.NewRegion(smallConfig(), 1, 0)
	installTenant(t, r, 0, 100)
	p := New(r, Config{Shards: 4})
	defer p.Close()

	// One flow, many packets: every packet must land on the same shard.
	raw := buildFlowPacket(t, 100, "192.168.0.1", "192.168.0.5", 999)
	for i := 0; i < 50; i++ {
		if !p.Submit(raw, t0()) {
			t.Fatal("submit failed")
		}
	}
	p.Drain()
	owners := 0
	for _, ss := range p.ShardStats() {
		if ss.Accepted > 0 {
			owners++
			if ss.Accepted != 50 || ss.Processed != 50 {
				t.Fatalf("owning shard stats: %+v", ss)
			}
		}
	}
	if owners != 1 {
		t.Fatalf("one flow landed on %d shards, want 1", owners)
	}
	st := p.Stats()
	if st.Region.Forwarded != 50 || st.Accepted != 50 || st.Processed != 50 {
		t.Fatalf("merged stats: %+v", st)
	}

	// Many flows must spread: with 64 distinct five-tuples, more than one
	// shard has to take traffic.
	for i := 0; i < 64; i++ {
		raw := buildFlowPacket(t, 100, fmt.Sprintf("192.168.0.%d", i+1), "192.168.0.5", uint16(1000+i))
		submitAll(t, p, [][]byte{raw})
	}
	p.Drain()
	busy := 0
	for _, ss := range p.ShardStats() {
		if ss.Accepted > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("64 flows landed on %d shard(s); RSS spread broken", busy)
	}
}

func TestShardPlaneBackpressureAndOversize(t *testing.T) {
	r := cluster.NewRegion(smallConfig(), 1, 0)
	installTenant(t, r, 0, 100)
	release := make(chan struct{})
	p := New(r, Config{
		Shards: 1, RingSlots: 2, MaxPacket: 256,
		Sink: func(shard int, res cluster.Result, err error) { <-release },
	})
	raw := buildFlowPacket(t, 100, "192.168.0.1", "192.168.0.5", 999)

	// The sink blocks, so the consumer holds its slot: the ring caps the
	// packets in the system at its capacity and further submits must fail.
	accepted := 0
	for p.Submit(raw, t0()) {
		accepted++
		if accepted > 2 {
			break
		}
	}
	if accepted != 2 {
		t.Fatalf("accepted %d with a 2-slot ring and a blocked worker", accepted)
	}
	// An oversize frame is refused up front, independent of ring state.
	if p.Submit(make([]byte, 300), t0()) {
		t.Fatal("oversize frame accepted")
	}
	st := p.Stats()
	if st.RingFull != 1 || st.Oversize != 1 || st.Accepted != 2 {
		t.Fatalf("backpressure counters: %+v", st)
	}

	close(release)
	p.Drain()
	p.Close()
	st = p.Stats()
	if st.Processed != 2 || st.Depth != 0 {
		t.Fatalf("post-drain stats: %+v", st)
	}
	// The intake refuses after Close without touching counters.
	if p.Submit(raw, t0()) {
		t.Fatal("submit accepted after Close")
	}
}

// TestShardedStatsParityMixedWorkload is the satellite-3 contract: a seeded
// mixed workload (forwards, every front-drop reason, degraded and residency
// fallbacks, meter kills) run through a 4-shard plane must scrape to
// exactly the totals a single-path reference run of the same bytes reports
// — region taxonomy, per-gateway counters, pool counters and heavy-hitter
// top-K alike.
func TestShardedStatsParityMixedWorkload(t *testing.T) {
	ref, rawsRef := buildParityWorld(t)
	refHH := heavyhitter.NewTracker(64)
	ref.EnableHeavyHitters(refHH)
	for _, raw := range rawsRef {
		ref.ProcessPacket(raw, t0()) //nolint:errcheck // drops expected
	}

	shr, raws := buildParityWorld(t)
	if !reflect.DeepEqual(rawsRef, raws) {
		t.Fatal("parity worlds diverged: packet lists differ")
	}
	p := New(shr, Config{Shards: 4, HeavyHitterK: 64})
	submitAll(t, p, raws)
	p.Drain()
	st := p.Stats()
	p.Close()

	if st.Accepted != uint64(len(raws)) || st.Processed != st.Accepted {
		t.Fatalf("intake accounting: %+v for %d frames", st, len(raws))
	}
	if !reflect.DeepEqual(st.Region, ref.Stats()) {
		t.Errorf("merged region stats diverged:\nsharded   %+v\nreference %+v", st.Region, ref.Stats())
	}
	// Coverage guard: the mix must actually exercise every shape, or the
	// parity above proves nothing.
	if st.Region.Forwarded == 0 || st.Region.Degraded == 0 || st.Region.FallbackMiss == 0 {
		t.Fatalf("workload lost coverage: %+v", st.Region)
	}
	for _, reason := range cluster.FrontDropReasonNames() {
		if reason == "dpu_error" {
			// Needs a DPU-attached region and a frame the light front
			// parse accepts but the full parser rejects — not reachable
			// from this two-tier workload; the DPU taxonomy is exercised
			// by the xgwdpu unit tests and the three-tier parity test.
			continue
		}
		if st.Region.FrontDrops[reason] == 0 {
			t.Fatalf("workload books no %s front drops", reason)
		}
	}

	// The per-shard views must sum to the merged view.
	var sumF, sumA uint64
	for _, ss := range p.ShardStats() {
		sumF += ss.Region.Forwarded
		sumA += ss.Accepted
	}
	if sumF != st.Region.Forwarded || sumA != st.Accepted {
		t.Fatalf("shard views do not sum to the merge: %d/%d vs %+v", sumF, sumA, st)
	}

	// Below the front end: hardware gateways and the XGW-x86 pool must have
	// seen identical traffic.
	refFwd, refDrop, refReasons := gwTotals(ref)
	shrFwd, shrDrop, shrReasons := gwTotals(shr)
	if refFwd != shrFwd || refDrop != shrDrop || !reflect.DeepEqual(refReasons, shrReasons) {
		t.Errorf("gateway totals diverged: sharded (%d fwd, %d drop, %v) vs reference (%d fwd, %d drop, %v)",
			shrFwd, shrDrop, shrReasons, refFwd, refDrop, refReasons)
	}
	if len(shrReasons) == 0 || shrReasons["meter_exceeded"] == 0 {
		t.Fatalf("workload books no gateway drops: %v", shrReasons)
	}
	for i := range ref.Fallback {
		if !reflect.DeepEqual(ref.Fallback[i].Stats(), shr.Fallback[i].Stats()) {
			t.Errorf("pool node %d diverged:\nsharded   %+v\nreference %+v",
				i, shr.Fallback[i].Stats(), ref.Fallback[i].Stats())
		}
	}

	// Heavy hitters: flows shard wholly and the mix keeps fewer distinct
	// flows than K, so the merged top-K is exact and must match the
	// reference tracker entry for entry.
	merged := p.HeavyHitters()
	if merged.TotalPackets() != refHH.TotalPackets() {
		t.Fatalf("hh totals: merged %d, reference %d", merged.TotalPackets(), refHH.TotalPackets())
	}
	flowKey := func(hf heavyhitter.HotFlow) string {
		return fmt.Sprintf("%d/%d/%x", hf.Cluster, hf.VNI, hf.FlowHash)
	}
	toMap := func(tr *heavyhitter.Tracker) map[string]uint64 {
		m := map[string]uint64{}
		for _, hf := range tr.TopFlows(1000) {
			m[flowKey(hf)] = hf.Packets
		}
		return m
	}
	if got, want := toMap(merged), toMap(refHH); !reflect.DeepEqual(got, want) {
		t.Errorf("hh top flows diverged:\nmerged    %v\nreference %v", got, want)
	}
}

// TestShardedDropParityAcrossStages extends the cross-stage drop-accounting
// reconciliation to the sharded path: every drop tallied across the
// per-shard flight recorders must appear in the owning subsystem's counters
// with the same count and vice versa — front, driver, gateway and fallback
// stages, with traffic delivered through a 4-shard plane.
func TestShardedDropParityAcrossStages(t *testing.T) {
	r, raws := buildParityWorld(t)
	p := New(r, Config{
		Shards:  4,
		Tracing: &trace.Config{Shards: 4, SlotsPerShard: 1024, SampleShift: 20},
	})
	submitAll(t, p, raws)
	p.Drain()

	// Gateway-stage reasons the region path cannot reach are driven
	// straight at one node; its recorder is shard 0's (wired last), so the
	// merge still owns the tally.
	gw := r.Clusters[0].Nodes[0].GW
	gw.ProcessPacket([]byte{9, 9, 9}, t0()) //nolint:errcheck // gateway parse_error
	if err := gw.InstallRoute(110, pfx("10.0.0.0/8"), tables.Route{Scope: tables.ScopePeer, NextHopVNI: 111}); err != nil {
		t.Fatal(err)
	}
	if err := gw.InstallRoute(111, pfx("10.0.0.0/8"), tables.Route{Scope: tables.ScopePeer, NextHopVNI: 110}); err != nil {
		t.Fatal(err)
	}
	gw.ProcessPacket(buildFlowPacket(t, 110, "192.168.0.1", "10.1.1.1", 999), t0()) //nolint:errcheck // route_loop
	gw.InstallVM(100, addr("192.168.0.77"), addr("100.64.0.77"))
	gw.InstallACL(100, tables.ACLRule{Dst: pfx("192.168.0.77/32"), Proto: netpkt.IPProtocolTCP,
		DstPortLo: 80, DstPortHi: 80, Action: tables.ACLDeny, Priority: 10})
	res, err := gw.ProcessPacket(buildFlowPacket(t, 100, "192.168.0.1", "192.168.0.77", 999), t0())
	if err != nil || res.DropReason != "acl_deny" {
		t.Fatalf("acl packet: res=%+v err=%v", res, err)
	}

	// Fallback-stage extras driven straight at a pool node.
	fb := r.Fallback[0]
	fb.ProcessFallback([]byte{7}, t0()) //nolint:errcheck // fallback parse_error
	fb.Routes.Insert(42, pfx("192.168.0.0/16"), tables.Route{Scope: tables.ScopeLocal})
	fb.ProcessFallback(buildFlowPacket(t, 42, "192.168.0.1", "192.168.0.9", 999), t0()) //nolint:errcheck // no_vm

	// Driver stage: a second region shares shard 0's recorder, so driver
	// drops flow into the same merged tally the plane scrapes.
	recs := p.Recorders()
	if len(recs) != 4 {
		t.Fatalf("recorders: %d, want 4", len(recs))
	}
	rD := cluster.NewRegion(smallConfig(), 2, 0)
	installTenant(t, rD, 0, 100)
	installTenant(t, rD, 1, 101)
	rD.SetClusterEnabled(1, false)
	rD.EnableTracing(recs[0])
	d := cluster.NewDriver(rD, 64)
	rawsD := [][]byte{
		buildFlowPacket(t, 100, "192.168.0.1", "192.168.0.5", 999),
		buildFlowPacket(t, 101, "192.168.0.1", "192.168.0.5", 999), // cluster_disabled
		buildFlowPacket(t, 999, "192.168.0.1", "192.168.0.5", 999), // no_route
		{1, 2, 3}, // parse_error
	}
	d.SubmitBatch(rawsD, t0())
	d.Close()
	for range d.Results() {
	}
	if d.Submit(rawsD[0], t0()) { // driver_closed
		t.Fatal("Submit accepted after Close")
	}

	// DPU stage: a three-tier region shares shard 0's recorder. One tenant
	// VM is demoted from hardware but parked on the DPU warm set, so a
	// hardware miss is served by the middle tier; a second key the warm set
	// never learned falls through to the x86 pool; and the tier's one drop
	// reason is driven straight at the pool, as with the gateway extras
	// (ParseFront accepts a frame iff the full parser does, so a wire
	// workload cannot reach the DPU's parse_error).
	cfgE := smallConfig()
	cfgE.DPUDevices = 2
	rE := cluster.NewRegion(cfgE, 1, 1)
	installTenant(t, rE, 0, 100)
	if !rE.Clusters[0].RemoveVM(100, addr("192.168.0.5")) {
		t.Fatal("demote: VM not resident in hardware")
	}
	for _, fbn := range rE.Fallback {
		fbn.Routes.Insert(100, pfx("192.168.0.0/16"), tables.Route{Scope: tables.ScopeLocal})
		fbn.VMNC.Insert(100, addr("192.168.0.5"), addr("100.64.0.5"))
		fbn.VMNC.Insert(100, addr("192.168.0.9"), addr("100.64.0.9"))
	}
	if err := rE.DPU.InstallRoute(100, pfx("192.168.0.0/16"), tables.Route{Scope: tables.ScopeLocal}); err != nil {
		t.Fatal(err)
	}
	if err := rE.DPU.InstallVM(100, addr("192.168.0.5"), addr("100.64.0.5")); err != nil {
		t.Fatal(err)
	}
	rE.EnableTracing(recs[0])
	resE, errE := rE.ProcessPacket(buildFlowPacket(t, 100, "192.168.0.1", "192.168.0.5", 999), t0())
	if errE != nil || !resE.ViaDPU {
		t.Fatalf("warm key not served by the DPU tier: %+v err=%v", resE, errE)
	}
	resE, errE = rE.ProcessPacket(buildFlowPacket(t, 100, "192.168.0.1", "192.168.0.9", 999), t0())
	if errE != nil || resE.ViaDPU || !resE.ViaFallback {
		t.Fatalf("cold key not carried by the pool: %+v err=%v", resE, errE)
	}
	rE.DPU.ProcessOn(0, []byte{8, 8}, t0()) //nolint:errcheck // dpu parse_error
	stE := rE.Stats()
	if stE.DPUServed != 1 || stE.FallbackMissX86 != 1 ||
		stE.FallbackMiss != stE.DPUServed+stE.FallbackMissX86 {
		t.Fatalf("per-tier miss split broken: %+v", stE)
	}

	// Per-stage reconciliation over the merged tally, both directions.
	dcs := p.DropCounts()
	checks := []struct {
		stage trace.Stage
		want  map[string]uint64
	}{
		{trace.StageFront, sumReasons(p.Stats().Region.FrontDrops, rD.Stats().FrontDrops)},
		{trace.StageDriver, nonzero(d.Stats().DropReasons)},
		{trace.StageGateway, func() map[string]uint64 {
			_, _, a := gwTotals(r)
			_, _, b := gwTotals(rD)
			return sumReasons(a, b)
		}()},
		{trace.StageFallback, func() map[string]uint64 {
			m := map[string]uint64{}
			for _, n := range r.Fallback {
				for k, v := range n.Stats().DropReasons {
					m[k] += v
				}
			}
			return nonzero(m)
		}()},
		{trace.StageDPU, nonzero(rE.DPU.Stats().DropReasons)},
	}
	for _, c := range checks {
		got := mergedReasons(dcs, c.stage)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%v: merged recorder tally %v, subsystem counters %v", c.stage, got, c.want)
		}
		if len(c.want) == 0 {
			t.Errorf("%v: no drops generated — test mix lost coverage", c.stage)
		}
	}

	// The merged drop events must be present (sampling never gates drops)
	// with resolvable reason names on every shard's recorder.
	evs := p.Events(trace.Filter{DropsOnly: true})
	if len(evs) < 12 {
		t.Fatalf("only %d drop events captured", len(evs))
	}
	for _, ev := range evs {
		if ev.Verdict != trace.VerdictDrop || ev.Code == 0 {
			t.Fatalf("non-drop event in DropsOnly view: %+v", ev)
		}
		if name := recs[0].ReasonName(ev.Stage, ev.Code); strings.HasPrefix(name, "code(") {
			t.Fatalf("unresolvable reason for %+v", ev)
		}
	}
	p.Close()
}

func TestShardPlaneMetricsExposition(t *testing.T) {
	r := cluster.NewRegion(smallConfig(), 1, 0)
	installTenant(t, r, 0, 100)
	p := New(r, Config{Shards: 2})
	defer p.Close()
	reg := metrics.NewRegistry()
	p.RegisterMetrics(reg)

	raw := buildFlowPacket(t, 100, "192.168.0.1", "192.168.0.5", 999)
	for i := 0; i < 7; i++ {
		submitAll(t, p, [][]byte{raw})
	}
	submitAll(t, p, [][]byte{{1, 2, 3}}) // one front parse_error
	p.Drain()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"sailfish_region_forwarded_total 7",
		"sailfish_region_dropped_total 1",
		`sailfish_region_front_drops_total{reason="parse_error"} 1`,
		`sailfish_shardplane_accepted_total{shard="0"}`,
		`sailfish_shardplane_accepted_total{shard="1"}`,
		`sailfish_shardplane_ring_depth{shard="0"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestShardPlaneZeroAllocForward pins the sharded hot path — dispatch
// (parse, hash, ring push) plus the worker's run-to-completion lane — at
// zero allocations per packet, with and without per-shard tracing and heavy
// hitters attached.
func TestShardPlaneZeroAllocForward(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	pin := func(label string, p *Plane, raw []byte) {
		t.Helper()
		now := t0()
		for i := 0; i < 32; i++ { // warm scratches, buckets and hh residency
			if !p.Submit(raw, now) {
				t.Fatal("warm-up submit failed")
			}
		}
		p.Drain()
		// Park every worker through its first timed idle sleep so the
		// runtime timer each goroutine lazily allocates exists before the
		// measurement window.
		time.Sleep(5 * time.Millisecond)
		allocs := testing.AllocsPerRun(200, func() {
			if !p.Submit(raw, now) {
				t.Fatal("submit failed")
			}
			p.Drain()
		})
		if allocs != 0 {
			t.Errorf("%s: sharded path allocates %.2f per packet, want 0", label, allocs)
		}
	}

	r1 := cluster.NewRegion(smallConfig(), 1, 0)
	installTenant(t, r1, 0, 100)
	p1 := New(r1, Config{Shards: 2})
	pin("plain", p1, buildFlowPacket(t, 100, "192.168.0.1", "192.168.0.5", 999))
	p1.Close()

	// Traced + tracked, flow sampled out (the production default): pick an inner
	// source whose hash misses the sample gate.
	r2 := cluster.NewRegion(smallConfig(), 1, 0)
	installTenant(t, r2, 0, 100)
	p2 := New(r2, Config{
		Shards:       2,
		Tracing:      &trace.Config{Shards: 2, SlotsPerShard: 256, SampleShift: 8},
		HeavyHitterK: 64,
	})
	defer p2.Close()
	recs := p2.Recorders()
	var raw2 []byte
	for i := 1; i < 64; i++ {
		cand := buildFlowPacket(t, 100, fmt.Sprintf("192.168.0.%d", i), "192.168.0.5", 999)
		var fm netpkt.FrontMeta
		if err := netpkt.ParseFront(cand, &fm); err != nil {
			t.Fatal(err)
		}
		if !recs[0].Sampled(fm.Flow.FastHash()) {
			raw2 = cand
			break
		}
	}
	if raw2 == nil {
		t.Fatal("no sampled-out source found in 63 candidates")
	}
	pin("traced, sampled out", p2, raw2)
}

// TestShardPlaneConcurrentScrape hammers every scrape surface while the
// dispatcher floods the shards with the full mixed workload; run under
// -race this is the concurrency proof for merge-on-scrape. The final
// accounting must still balance exactly.
func TestShardPlaneConcurrentScrape(t *testing.T) {
	r, raws := buildParityWorld(t)
	p := New(r, Config{
		Shards:       4,
		RingSlots:    256,
		Tracing:      &trace.Config{Shards: 2, SlotsPerShard: 256, SampleShift: 0},
		HeavyHitterK: 16,
	})
	reg := metrics.NewRegistry()
	p.RegisterMetrics(reg)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = p.Stats()
				_ = p.ShardStats()
				_ = p.DropCounts()
				_ = p.Events(trace.Filter{DropsOnly: true})
				_ = p.HeavyHitters()
				var buf bytes.Buffer
				if err := reg.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	const rounds = 20
	for i := 0; i < rounds; i++ {
		submitAll(t, p, raws)
	}
	p.Drain()
	close(stop)
	wg.Wait()
	st := p.Stats()
	p.Close()

	if st.Accepted != uint64(rounds*len(raws)) || st.Processed != st.Accepted || st.Depth != 0 {
		t.Fatalf("accounting off after concurrent scrape: %+v (%d frames)", st, rounds*len(raws))
	}
	if st.Region.Forwarded == 0 || st.Region.Dropped == 0 || st.Region.FallbackMiss == 0 {
		t.Fatalf("workload lost coverage: %+v", st.Region)
	}
	if hh := p.HeavyHitters(); hh.TotalPackets() == 0 {
		t.Fatal("heavy hitters observed nothing")
	}
}

// BenchmarkShardPlaneForward measures the sharded forward path end to end:
// dispatcher hash+push plus concurrent worker lanes. `make bench` runs the
// same plane through cmd/fastpath-bench with GOMAXPROCS matched to the
// shard count.
func BenchmarkShardPlaneForward(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			r := cluster.NewRegion(smallConfig(), 1, 0)
			installTenant(b, r, 0, 100)
			p := New(r, Config{Shards: shards, RingSlots: 4096})
			raws := make([][]byte, 64)
			for i := range raws {
				raws[i] = buildFlowPacket(b, 100, fmt.Sprintf("192.168.1.%d", i+1), "192.168.0.5", uint16(1000+i))
			}
			now := t0()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for !p.Submit(raws[i&63], now) {
					runtime.Gosched()
				}
			}
			p.Drain()
			b.StopTimer()
			p.Close()
			if st := p.Stats(); st.Region.Forwarded != uint64(b.N) {
				b.Fatalf("forwarded %d of %d", st.Region.Forwarded, b.N)
			}
		})
	}
}

// TestCloseRacesSubmitBatch hammers Close against a concurrently submitting
// dispatcher (run under -race by the race gate): a submit that loses the
// race must be rejected cleanly — never stranded in a ring no worker will
// drain — so after Close returns every accepted frame has been processed
// and later submits reject.
func TestCloseRacesSubmitBatch(t *testing.T) {
	raws := make([][]byte, 8)
	for i := range raws {
		raws[i] = buildFlowPacket(t, 100, fmt.Sprintf("192.168.0.%d", i+1), "192.168.0.5", uint16(1000+i))
	}
	for round := 0; round < 25; round++ {
		r := cluster.NewRegion(smallConfig(), 1, 1)
		installTenant(t, r, 0, 100)
		p := New(r, Config{Shards: 4})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 2000; i++ {
				if p.SubmitBatch(raws, t0()) == 0 && p.closed.Load() {
					return
				}
			}
		}()
		runtime.Gosched() // let the dispatcher get mid-burst
		p.Close()
		<-done
		if p.Submit(raws[0], t0()) {
			t.Fatal("submit accepted after Close")
		}
		st := p.Stats()
		if st.Accepted != st.Processed {
			t.Fatalf("round %d: accepted %d != processed %d — a frame racing Close was stranded",
				round, st.Accepted, st.Processed)
		}
		if st.Depth != 0 {
			t.Fatalf("round %d: ring depth %d after Close", round, st.Depth)
		}
	}
}
