//go:build race

package shardplane

// raceEnabled reports whether the race detector instruments this build; its
// shadow-memory bookkeeping allocates on synchronization operations, so
// allocation pins skip themselves under -race (the same binary still runs
// them in the plain `go test` pass).
const raceEnabled = true
