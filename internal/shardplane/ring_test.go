package shardplane

import (
	"bytes"
	"fmt"
	"testing"
)

func TestRingDefaultsAndRounding(t *testing.T) {
	r := NewRing(0, 0)
	if r.Cap() != 1024 || r.MaxPacket() != 2048 {
		t.Fatalf("defaults: cap=%d maxPacket=%d", r.Cap(), r.MaxPacket())
	}
	r = NewRing(5, 100)
	if r.Cap() != 8 || r.MaxPacket() != 100 {
		t.Fatalf("rounding: cap=%d maxPacket=%d", r.Cap(), r.MaxPacket())
	}
}

func TestRingFillDrainWrap(t *testing.T) {
	r := NewRing(4, 64)
	if r.Cap() != 4 {
		t.Fatalf("cap = %d", r.Cap())
	}
	// Push/peek/advance across several times the capacity so the positions
	// wrap; every payload and packet clock must come back intact.
	seq := 0
	for round := 0; round < 5; round++ {
		// Fill to capacity.
		pushed := []int{}
		for {
			p := []byte(fmt.Sprintf("pkt-%d", seq))
			if !r.Push(p, int64(seq)) {
				break
			}
			pushed = append(pushed, seq)
			seq++
		}
		if len(pushed) != r.Cap() {
			t.Fatalf("round %d: pushed %d, want %d", round, len(pushed), r.Cap())
		}
		if r.Len() != r.Cap() {
			t.Fatalf("round %d: Len = %d after fill", round, r.Len())
		}
		// A full ring must reject without corrupting state.
		if r.Push([]byte("overflow"), 0) {
			t.Fatal("push succeeded on a full ring")
		}
		// Drain in FIFO order.
		for _, want := range pushed {
			p, ns, ok := r.Peek()
			if !ok {
				t.Fatalf("round %d: ring empty with %d expected", round, want)
			}
			if !bytes.Equal(p, []byte(fmt.Sprintf("pkt-%d", want))) || ns != int64(want) {
				t.Fatalf("round %d: got (%q, %d), want pkt-%d", round, p, ns, want)
			}
			r.Advance()
		}
		if _, _, ok := r.Peek(); ok {
			t.Fatalf("round %d: ring not empty after drain", round)
		}
		if r.Len() != 0 {
			t.Fatalf("round %d: Len = %d after drain", round, r.Len())
		}
	}
}

func TestRingOversizeRejected(t *testing.T) {
	r := NewRing(4, 8)
	if r.Push(make([]byte, 9), 0) {
		t.Fatal("oversize frame accepted")
	}
	if !r.Push(make([]byte, 8), 0) {
		t.Fatal("max-size frame rejected")
	}
	p, _, ok := r.Peek()
	if !ok || len(p) != 8 {
		t.Fatalf("peek after oversize reject: ok=%v len=%d", ok, len(p))
	}
}

func TestRingPeekAliasesUntilAdvance(t *testing.T) {
	r := NewRing(2, 16)
	if !r.Push([]byte("first"), 1) {
		t.Fatal("push failed")
	}
	p1, _, _ := r.Peek()
	// Peek is idempotent until Advance.
	p2, ns, ok := r.Peek()
	if !ok || !bytes.Equal(p1, p2) || ns != 1 {
		t.Fatalf("second peek diverged: %q vs %q", p1, p2)
	}
	r.Advance()
	if _, _, ok := r.Peek(); ok {
		t.Fatal("ring should be empty after advance")
	}
}
