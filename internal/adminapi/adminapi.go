// Package adminapi defines the JSON wire types of the sailfish-gw admin
// plane's observability endpoints (/debug/trace, /debug/trace/drops, /topk,
// /vtrace) and the builders that materialize them from the live recorder,
// heavy-hitter tracker and Vtrace collector. sailfish-gw is the producer and
// sailfish-ctl the consumer; sharing one package keeps the two from
// drifting.
package adminapi

import (
	"fmt"
	"math"

	"sailfish/internal/heavyhitter"
	"sailfish/internal/netpkt"
	"sailfish/internal/placement"
	"sailfish/internal/slo"
	"sailfish/internal/snat"
	"sailfish/internal/telemetry"
	"sailfish/internal/trace"
)

// TraceEvent is one flight-recorder record with its interned codes resolved
// to names. FlowHash is rendered in hex — it is an identity, not a number.
type TraceEvent struct {
	TimeNs   int64  `json:"timeNs"`
	FlowHash string `json:"flowHash"`
	VNI      uint32 `json:"vni"`
	Device   string `json:"device"`
	Stage    string `json:"stage"`
	Verdict  string `json:"verdict"`
	Reason   string `json:"reason,omitempty"`
}

// TraceResponse is the /debug/trace body.
type TraceResponse struct {
	SampleShift uint         `json:"sampleShift"`
	Events      []TraceEvent `json:"events"`
}

// BuildTrace snapshots the recorder under the given filter.
func BuildTrace(rec *trace.Recorder, f trace.Filter) TraceResponse {
	if rec == nil {
		return TraceResponse{Events: []TraceEvent{}}
	}
	out := TraceResponse{SampleShift: rec.SampleShift(), Events: []TraceEvent{}}
	for _, ev := range rec.Events(f) {
		te := TraceEvent{
			TimeNs:   ev.TimeNs,
			FlowHash: fmt.Sprintf("0x%016x", ev.FlowHash),
			VNI:      uint32(ev.VNI),
			Device:   rec.DeviceName(ev.Dev),
			Stage:    ev.Stage.String(),
			Verdict:  ev.Verdict.String(),
		}
		if ev.Code != 0 {
			te.Reason = rec.ReasonName(ev.Stage, ev.Code)
		}
		out.Events = append(out.Events, te)
	}
	return out
}

// DropCount is one (stage, reason) cell of the cumulative drop tally.
type DropCount struct {
	Stage  string `json:"stage"`
	Reason string `json:"reason"`
	Count  uint64 `json:"count"`
}

// DropsResponse is the /debug/trace/drops body: the wrap-immune cumulative
// tallies, not the (bounded) ring contents.
type DropsResponse struct {
	Drops []DropCount `json:"drops"`
}

// BuildDrops materializes the recorder's cumulative drop tallies.
func BuildDrops(rec *trace.Recorder) DropsResponse {
	out := DropsResponse{Drops: []DropCount{}}
	if rec == nil {
		return out
	}
	for _, dc := range rec.DropCounts() {
		out.Drops = append(out.Drops, DropCount{
			Stage:  dc.Stage.String(),
			Reason: dc.Reason,
			Count:  dc.Count,
		})
	}
	return out
}

// HotFlow is one flow of the top-K, hottest first.
type HotFlow struct {
	Cluster  int     `json:"cluster"`
	VNI      uint32  `json:"vni"`
	FlowHash string  `json:"flowHash"`
	Packets  uint64  `json:"packets"`
	MaxErr   uint64  `json:"maxErr"`
	Share    float64 `json:"share"`
}

// HotRoute is one (VNI, inner-DIP) route entry that qualifies for XGW-H
// residency under the coverage target.
type HotRoute struct {
	Cluster int     `json:"cluster"`
	VNI     uint32  `json:"vni"`
	DIP     string  `json:"dip"`
	Packets uint64  `json:"packets"`
	MaxErr  uint64  `json:"maxErr"`
	Share   float64 `json:"share"`
}

// VNISkew is the water-level view of one tenant network.
type VNISkew struct {
	VNI      uint32  `json:"vni"`
	Packets  uint64  `json:"packets"`
	Bytes    uint64  `json:"bytes"`
	Share    float64 `json:"share"`
	HotShare float64 `json:"hotShare"`
}

// TopKResponse is the /topk body: the residency answer for the requested
// coverage target plus the flow top-K and the per-VNI skew summary.
type TopKResponse struct {
	TotalPackets     uint64     `json:"totalPackets"`
	TargetCoverage   float64    `json:"targetCoverage"`
	AchievedCoverage float64    `json:"achievedCoverage"`
	Routes           []HotRoute `json:"routes"`
	Flows            []HotFlow  `json:"flows"`
	VNIs             []VNISkew  `json:"vnis"`
}

// BuildTopK materializes the tracker's heavy-hitter views. coverage is the
// residency target (e.g. 0.95); n bounds the flow list (0 = all tracked).
func BuildTopK(hh *heavyhitter.Tracker, coverage float64, n int) TopKResponse {
	res := hh.HotEntries(coverage)
	out := TopKResponse{
		TotalPackets:     hh.TotalPackets(),
		TargetCoverage:   res.Target,
		AchievedCoverage: res.Achieved,
		Routes:           []HotRoute{},
		Flows:            []HotFlow{},
		VNIs:             []VNISkew{},
	}
	for _, e := range res.Entries {
		out.Routes = append(out.Routes, HotRoute{
			Cluster: e.Cluster, VNI: uint32(e.VNI), DIP: e.DIP.String(),
			Packets: e.Packets, MaxErr: e.MaxErr, Share: e.Share,
		})
	}
	for _, f := range hh.TopFlows(n) {
		out.Flows = append(out.Flows, HotFlow{
			Cluster: f.Cluster, VNI: uint32(f.VNI),
			FlowHash: fmt.Sprintf("0x%016x", f.FlowHash),
			Packets:  f.Packets, MaxErr: f.MaxErr, Share: f.Share,
		})
	}
	for _, s := range hh.VNISkewSummary() {
		out.VNIs = append(out.VNIs, VNISkew{
			VNI: uint32(s.VNI), Packets: s.Packets, Bytes: s.Bytes,
			Share: s.Share, HotShare: s.HotShare,
		})
	}
	return out
}

// PlacementEntry is one (VNI, DIP) key currently resident on a ladder rung
// ("hw" = XGW-H hardware, "dpu" = the SmartNIC warm tier).
type PlacementEntry struct {
	VNI          uint32  `json:"vni"`
	DIP          string  `json:"dip"`
	Cluster      int     `json:"cluster"`
	Tier         string  `json:"tier"`
	Share        float64 `json:"share"` // last measured window share
	ResidentAtNs int64   `json:"residentAtNs"`
}

// PlacementCycle is one residency cycle's outcome. The DPU fields are zero
// on a two-tier box (no warm rung attached).
type PlacementCycle struct {
	Cycle            uint64  `json:"cycle"`
	AtNs             int64   `json:"atNs"`
	EmptyWindow      bool    `json:"emptyWindow"`
	Promoted         int     `json:"promoted"`
	Demoted          int     `json:"demoted"`
	DeferredChurn    int     `json:"deferredChurn"`
	DeferredCapacity int     `json:"deferredCapacity"`
	Failed           int     `json:"failed"`
	ResidentKeys     int     `json:"residentKeys"`
	ResidentEntries  int     `json:"residentEntries"`
	DesiredEntries   int     `json:"desiredEntries"`
	HardwareShare    float64 `json:"hardwareShare"`

	PromotedDPU         int     `json:"promotedDPU"`
	DemotedDPU          int     `json:"demotedDPU"`
	Cascaded            int     `json:"cascaded"`
	Upgraded            int     `json:"upgraded"`
	DeferredChurnDPU    int     `json:"deferredChurnDPU"`
	DeferredCapacityDPU int     `json:"deferredCapacityDPU"`
	DPUResidentKeys     int     `json:"dpuResidentKeys"`
	DPUShare            float64 `json:"dpuShare"`
	StackShare          float64 `json:"stackShare"`
}

// PlacementTotals are the loop's lifetime counters.
type PlacementTotals struct {
	Cycles           uint64 `json:"cycles"`
	EmptyWindows     uint64 `json:"emptyWindows"`
	Promotions       uint64 `json:"promotions"`
	Demotions        uint64 `json:"demotions"`
	DeferredChurn    uint64 `json:"deferredChurn"`
	DeferredCapacity uint64 `json:"deferredCapacity"`
	Failures         uint64 `json:"failures"`

	PromotionsDPU       uint64 `json:"promotionsDPU"`
	DemotionsDPU        uint64 `json:"demotionsDPU"`
	Cascades            uint64 `json:"cascades"`
	Upgrades            uint64 `json:"upgrades"`
	DeferredChurnDPU    uint64 `json:"deferredChurnDPU"`
	DeferredCapacityDPU uint64 `json:"deferredCapacityDPU"`
}

// PlacementResponse is the /placement body: the effective policy, the last
// cycle's report, lifetime totals and the resident set.
type PlacementResponse struct {
	Enabled bool `json:"enabled"`
	// Ladder reports whether the loop runs the three-tier residency
	// ladder (a DPU warm rung sits between hardware and x86).
	Ladder          bool             `json:"ladder"`
	PromoteShare    float64          `json:"promoteShare"`
	DemoteShare     float64          `json:"demoteShare"`
	WarmShare       float64          `json:"warmShare"`
	WarmDemoteShare float64          `json:"warmDemoteShare"`
	CoverageTarget  float64          `json:"coverageTarget"`
	ChurnBudget     int              `json:"churnBudget"`
	DPUChurnBudget  int              `json:"dpuChurnBudget"`
	Last            PlacementCycle   `json:"last"`
	Totals          PlacementTotals  `json:"totals"`
	Resident        []PlacementEntry `json:"resident"`
}

// BuildPlacement materializes the residency loop's admin view. A nil loop
// (placement not enabled on this box) yields Enabled: false.
func BuildPlacement(lp *placement.Loop) PlacementResponse {
	out := PlacementResponse{Resident: []PlacementEntry{}}
	if lp == nil {
		return out
	}
	s := lp.Snapshot()
	out.Enabled = true
	out.Ladder = s.Ladder
	out.PromoteShare = s.Config.PromoteShare
	out.DemoteShare = s.Config.DemoteShare
	out.WarmShare = s.Config.WarmShare
	out.WarmDemoteShare = s.Config.WarmDemoteShare
	out.CoverageTarget = s.Config.CoverageTarget
	out.ChurnBudget = s.Config.ChurnBudget
	out.DPUChurnBudget = s.Config.DPUChurnBudget
	atNs := int64(0)
	if !s.Last.At.IsZero() {
		atNs = s.Last.At.UnixNano()
	}
	out.Last = PlacementCycle{
		Cycle: s.Last.Cycle, AtNs: atNs, EmptyWindow: s.Last.EmptyWindow,
		Promoted: s.Last.Promoted, Demoted: s.Last.Demoted,
		DeferredChurn: s.Last.DeferredChurn, DeferredCapacity: s.Last.DeferredCapacity,
		Failed:       s.Last.Failed,
		ResidentKeys: s.Last.ResidentKeys, ResidentEntries: s.Last.ResidentEntries,
		DesiredEntries: s.Last.DesiredEntries, HardwareShare: s.Last.HardwareShare,

		PromotedDPU: s.Last.PromotedDPU, DemotedDPU: s.Last.DemotedDPU,
		Cascaded: s.Last.Cascaded, Upgraded: s.Last.Upgraded,
		DeferredChurnDPU:    s.Last.DeferredChurnDPU,
		DeferredCapacityDPU: s.Last.DeferredCapacityDPU,
		DPUResidentKeys:     s.Last.DPUResidentKeys,
		DPUShare:            s.Last.DPUShare,
		StackShare:          s.Last.StackShare,
	}
	out.Totals = PlacementTotals{
		Cycles: s.Totals.Cycles, EmptyWindows: s.Totals.EmptyWindows,
		Promotions: s.Totals.Promotions,
		Demotions:  s.Totals.Demotions, DeferredChurn: s.Totals.DeferredChurn,
		DeferredCapacity: s.Totals.DeferredCapacity, Failures: s.Totals.Failures,

		PromotionsDPU: s.Totals.PromotionsDPU, DemotionsDPU: s.Totals.DemotionsDPU,
		Cascades: s.Totals.Cascades, Upgrades: s.Totals.Upgrades,
		DeferredChurnDPU:    s.Totals.DeferredChurnDPU,
		DeferredCapacityDPU: s.Totals.DeferredCapacityDPU,
	}
	for _, e := range s.Resident {
		out.Resident = append(out.Resident, PlacementEntry{
			VNI: uint32(e.VNI), DIP: e.DIP.String(), Cluster: e.Cluster,
			Tier:  e.Tier.String(),
			Share: e.Share, ResidentAtNs: e.ResidentAt.UnixNano(),
		})
	}
	return out
}

// VtraceRule is one installed match rule.
type VtraceRule struct {
	VNI uint32 `json:"vni"`
	Dst string `json:"dst,omitempty"` // empty = the whole VNI
}

// VtraceHop is one device postcard.
type VtraceHop struct {
	Device string `json:"device"`
	Seq    uint64 `json:"seq"`
	Action string `json:"action"`
	TimeNs int64  `json:"timeNs"`
}

// VtraceFlow is a traced flow's reconstructed path.
type VtraceFlow struct {
	VNI  uint32      `json:"vni"`
	Src  string      `json:"src"`
	Dst  string      `json:"dst"`
	Hops []VtraceHop `json:"hops"`
}

// VtraceFinding is one loss-localization conclusion.
type VtraceFinding struct {
	VNI    uint32 `json:"vni"`
	Src    string `json:"src"`
	Dst    string `json:"dst"`
	Kind   string `json:"kind"` // "drop" or "vanish"
	Where  string `json:"where"`
	Detail string `json:"detail"`
}

// VtraceResponse is the /vtrace body: installed rules, per-flow paths, and
// the collector's loss-localization findings.
type VtraceResponse struct {
	Rules    []VtraceRule    `json:"rules"`
	Flows    []VtraceFlow    `json:"flows"`
	Findings []VtraceFinding `json:"findings"`
}

// BuildVtrace materializes the collector's flow-path and loss-localization
// views. expectedHops is the healthy hop sequence used for vanish detection.
func BuildVtrace(m *telemetry.Matcher, c *telemetry.Collector, expectedHops []string) VtraceResponse {
	out := VtraceResponse{Rules: []VtraceRule{}, Flows: []VtraceFlow{}, Findings: []VtraceFinding{}}
	if m == nil || c == nil {
		return out
	}
	for _, r := range m.Rules() {
		vr := VtraceRule{VNI: uint32(r.VNI)}
		if r.Dst.IsValid() {
			vr.Dst = r.Dst.String()
		}
		out.Rules = append(out.Rules, vr)
	}
	for _, k := range c.Flows() {
		vf := VtraceFlow{
			VNI: uint32(k.VNI), Src: k.Src.String(), Dst: k.Dst.String(),
			Hops: []VtraceHop{},
		}
		for _, h := range c.Path(k) {
			vf.Hops = append(vf.Hops, VtraceHop{
				Device: h.Device, Seq: h.Seq, Action: h.Action, TimeNs: h.TimeNs,
			})
		}
		out.Flows = append(out.Flows, vf)
	}
	for _, f := range c.Diagnose(expectedHops) {
		out.Findings = append(out.Findings, VtraceFinding{
			VNI: uint32(f.Flow.VNI), Src: f.Flow.Src.String(), Dst: f.Flow.Dst.String(),
			Kind: f.Kind, Where: f.Where, Detail: f.Detail,
		})
	}
	return out
}

// SLOAlert is one firing burn-rate condition on a tenant.
type SLOAlert struct {
	VNI       uint32  `json:"vni"`
	Window    string  `json:"window"` // "fast" or "slow"
	Burn      float64 `json:"burn"`
	LossRatio float64 `json:"lossRatio"`
	Threshold float64 `json:"threshold"`
	SinceNs   int64   `json:"sinceNs"`
}

// SLOTenant is one VNI's evaluated SLI state: lifetime disposition ledger,
// both window burns, and coverage shares.
type SLOTenant struct {
	VNI             uint32 `json:"vni"`
	Attempted       uint64 `json:"attempted"`
	Forwarded       uint64 `json:"forwarded"`
	DPUServed       uint64 `json:"dpuServed"`
	Fallback        uint64 `json:"fallback"`
	FallbackMiss    uint64 `json:"fallbackMiss"`
	FallbackMissX86 uint64 `json:"fallbackMissX86"`
	Degraded        uint64 `json:"degraded"`
	Dropped         uint64 `json:"dropped"`

	FastLossRatio float64 `json:"fastLossRatio"`
	FastBurn      float64 `json:"fastBurn"`
	SlowLossRatio float64 `json:"slowLossRatio"`
	SlowBurn      float64 `json:"slowBurn"`

	StackCoverage float64 `json:"stackCoverage"`
	DPUMissShare  float64 `json:"dpuMissShare"`
	X86MissShare  float64 `json:"x86MissShare"`

	Alerts []SLOAlert `json:"alerts"`
}

// SLOHistoryPoint is one per-tick SLI delta in a tenant's retained series.
type SLOHistoryPoint struct {
	TimeNs        int64   `json:"timeNs"`
	LossRatio     float64 `json:"lossRatio"`
	StackCoverage float64 `json:"stackCoverage"`
	Attempted     uint64  `json:"attempted"`
	Dropped       uint64  `json:"dropped"`
}

// SLOResponse is the /slo body: the effective policy, engine counters, the
// gateway-global latency quantiles and every tracked tenant's state. A nil
// engine (SLO not enabled on this box) yields Enabled: false.
type SLOResponse struct {
	Enabled           bool        `json:"enabled"`
	TimeNs            int64       `json:"timeNs"`
	LossBudget        float64     `json:"lossBudget"`
	FastWindowNs      int64       `json:"fastWindowNs"`
	SlowWindowNs      int64       `json:"slowWindowNs"`
	FastBurnThreshold float64     `json:"fastBurnThreshold"`
	SlowBurnThreshold float64     `json:"slowBurnThreshold"`
	Ticks             uint64      `json:"ticks"`
	LatencyP50Ns      float64     `json:"latencyP50Ns"` // 0 when unknown (JSON has no NaN)
	LatencyP99Ns      float64     `json:"latencyP99Ns"`
	ActiveAlerts      int         `json:"activeAlerts"`
	Tenants           []SLOTenant `json:"tenants"`
}

// SLOTenantResponse is the /slo/{vni} body: one tenant's state plus its
// retained per-tick history. Found is false when the VNI is not tracked.
type SLOTenantResponse struct {
	Enabled bool              `json:"enabled"`
	Found   bool              `json:"found"`
	Tenant  SLOTenant         `json:"tenant"`
	History []SLOHistoryPoint `json:"history"`
}

// finite collapses NaN/Inf to 0: these encode "no observation yet" in the
// engine, and encoding/json refuses non-finite floats.
func finite(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return f
}

func sloTenant(ts slo.TenantStatus) SLOTenant {
	out := SLOTenant{
		VNI:             uint32(ts.VNI),
		Attempted:       ts.Total.Attempted(),
		Forwarded:       ts.Total.Forwarded,
		DPUServed:       ts.Total.DPUServed,
		Fallback:        ts.Total.Fallback,
		FallbackMiss:    ts.Total.FallbackMiss,
		FallbackMissX86: ts.Total.FallbackMissX86,
		Degraded:        ts.Total.Degraded,
		Dropped:         ts.Total.Dropped,
		FastLossRatio:   finite(ts.FastLossRatio),
		FastBurn:        finite(ts.FastBurn),
		SlowLossRatio:   finite(ts.SlowLossRatio),
		SlowBurn:        finite(ts.SlowBurn),
		StackCoverage:   finite(ts.StackCoverage),
		DPUMissShare:    finite(ts.DPUMissShare),
		X86MissShare:    finite(ts.X86MissShare),
		Alerts:          []SLOAlert{},
	}
	for _, a := range ts.Alerts {
		out.Alerts = append(out.Alerts, SLOAlert{
			VNI: uint32(a.VNI), Window: a.Window.String(),
			Burn: finite(a.Burn), LossRatio: finite(a.LossRatio),
			Threshold: a.Threshold, SinceNs: a.SinceNs,
		})
	}
	return out
}

// BuildSLO materializes the engine's status for the admin plane.
func BuildSLO(e *slo.Engine) SLOResponse {
	out := SLOResponse{Tenants: []SLOTenant{}}
	if e == nil {
		return out
	}
	st := e.Snapshot()
	out.Enabled = true
	out.TimeNs = st.TimeNs
	out.LossBudget = st.LossBudget
	out.FastWindowNs = st.FastWindowNs
	out.SlowWindowNs = st.SlowWindowNs
	out.FastBurnThreshold = st.FastBurnThreshold
	out.SlowBurnThreshold = st.SlowBurnThreshold
	out.Ticks = st.Ticks
	out.LatencyP50Ns = finite(st.LatencyP50Ns)
	out.LatencyP99Ns = finite(st.LatencyP99Ns)
	for _, ts := range st.Tenants {
		t := sloTenant(ts)
		out.ActiveAlerts += len(t.Alerts)
		out.Tenants = append(out.Tenants, t)
	}
	return out
}

// BuildSLOTenant materializes one tenant's state and history.
func BuildSLOTenant(e *slo.Engine, vni uint32) SLOTenantResponse {
	out := SLOTenantResponse{History: []SLOHistoryPoint{}, Tenant: SLOTenant{Alerts: []SLOAlert{}}}
	if e == nil {
		return out
	}
	out.Enabled = true
	for _, ts := range e.Snapshot().Tenants {
		if uint32(ts.VNI) != vni {
			continue
		}
		out.Found = true
		out.Tenant = sloTenant(ts)
		break
	}
	for _, hp := range e.History(netpkt.VNI(vni)) {
		out.History = append(out.History, SLOHistoryPoint{
			TimeNs: hp.TimeNs, LossRatio: finite(hp.LossRatio),
			StackCoverage: finite(hp.StackCoverage),
			Attempted:     hp.Attempted, Dropped: hp.Dropped,
		})
	}
	return out
}

// JournalEvent is one ops-journal entry on the wire.
type JournalEvent struct {
	Seq     uint64 `json:"seq"`
	TimeNs  int64  `json:"timeNs"`
	Source  string `json:"source"`
	Kind    string `json:"kind"`
	VNI     uint32 `json:"vni,omitempty"`
	Cluster int    `json:"cluster"` // -1 when the event has no cluster scope
	Detail  string `json:"detail"`
}

// EventsResponse is the /events body: a journal tail plus the cursor state a
// follower needs — resume from LastSeq, notice loss via Dropped.
type EventsResponse struct {
	Enabled  bool           `json:"enabled"`
	LastSeq  uint64         `json:"lastSeq"`
	Appended uint64         `json:"appended"`
	Dropped  uint64         `json:"dropped"`
	Events   []JournalEvent `json:"events"`
}

// BuildEvents materializes the journal entries strictly after since (0 = from
// the oldest retained), at most max (0 = all retained).
func BuildEvents(j *slo.Journal, since uint64, max int) EventsResponse {
	out := EventsResponse{Events: []JournalEvent{}}
	if j == nil {
		return out
	}
	out.Enabled = true
	out.LastSeq = j.LastSeq()
	out.Appended = j.Appended()
	out.Dropped = j.Dropped()
	for _, e := range j.Since(since, max) {
		out.Events = append(out.Events, JournalEvent{
			Seq: e.Seq, TimeNs: e.TimeNs, Source: e.Source, Kind: e.Kind,
			VNI: uint32(e.VNI), Cluster: e.Cluster, Detail: e.Detail,
		})
	}
	return out
}

// SNATShard is one shard of the /snat view: occupancy, journal position
// and replication backlog.
type SNATShard struct {
	Shard        int    `json:"shard"`
	Live         int    `json:"live"`
	Slots        int    `json:"slots"`
	PortCapacity int    `json:"portCapacity"`
	JournalDepth uint64 `json:"journalDepth"`
	PendingDelta uint64 `json:"pendingDelta"`
	AwaitingSnap bool   `json:"awaitingSnap"`
}

// SNATResponse is the /snat body: the survivable session store's serving
// side, promotion accounting, replication health and per-shard detail.
type SNATResponse struct {
	OnBackup      bool        `json:"onBackup"`
	Sessions      int         `json:"sessions"`
	StandbySess   int         `json:"standbySessions"`
	MemoryBytes   uint64      `json:"memoryBytes"`
	Preserved     uint64      `json:"preserved"`
	Orphaned      uint64      `json:"orphaned"`
	Promotions    uint64      `json:"promotions"`
	DeltasApplied uint64      `json:"deltasApplied"`
	Snapshots     uint64      `json:"snapshots"`
	SnapshotGen   uint64      `json:"snapshotGeneration"`
	Retries       uint64      `json:"retries"`
	Gaps          uint64      `json:"gaps"`
	Failed        uint64      `json:"failed"`
	LagSeconds    float64     `json:"replicationLagSeconds"`
	Shards        []SNATShard `json:"shards"`
}

// BuildSNAT snapshots the session service for the admin plane. A nil
// service (a node with no SNAT role) renders as an empty response.
func BuildSNAT(svc *snat.Service) SNATResponse {
	out := SNATResponse{Shards: []SNATShard{}}
	if svc == nil {
		return out
	}
	rs := svc.ReplicationStats()
	out.OnBackup = svc.OnBackup()
	out.Sessions = svc.Sessions()
	out.StandbySess = svc.Standby().Sessions()
	out.MemoryBytes = svc.Active().MemoryBytes()
	out.Preserved = svc.Preserved()
	out.Orphaned = svc.Orphaned()
	out.Promotions = svc.Promotions()
	out.DeltasApplied = rs.DeltasApplied
	out.Snapshots = rs.Snapshots
	out.SnapshotGen = rs.SnapshotGeneration
	out.Retries = rs.Retries
	out.Gaps = rs.Gaps
	out.Failed = rs.Failed
	out.LagSeconds = rs.LagSeconds
	for _, h := range svc.ShardHealths() {
		out.Shards = append(out.Shards, SNATShard{
			Shard:        h.Shard,
			Live:         h.Live,
			Slots:        h.Slots,
			PortCapacity: h.PortCapacity,
			JournalDepth: h.JournalDepth,
			PendingDelta: h.PendingDelta,
			AwaitingSnap: h.AwaitingSnap,
		})
	}
	return out
}
