package snat

import (
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"time"
)

// Replicator pumps one store's journal into a standby. Transfers ride the
// same fault-tolerant discipline as controller table pushes (§6.1): bounded
// retry with exponential backoff and deterministic jitter, and an injectable
// transport hook so simulations can lose replication traffic on the same
// code path production takes. A shard that exhausts its retry budget is
// simply left behind for the next Sync round — and if the journal ring has
// meanwhile evicted what it missed, the sequence gap is detected and
// repaired with a full-shard snapshot.

// ErrLinkDown is the default error the transport hook can return to model a
// lost transfer.
var ErrLinkDown = errors.New("snat: replication link down")

// ReplicationConfig tunes the standby sync policy.
type ReplicationConfig struct {
	// MaxAttempts bounds transfer tries per shard per Sync round (first
	// try included; default 4).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; it doubles per
	// attempt (default 50ms). MaxBackoff caps the growth (default 1s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterSeed seeds the deterministic backoff jitter (default 1).
	JitterSeed int64
	// Link, when set, is consulted before every transfer (deltas or
	// snapshot); returning an error loses that attempt. nil is a reliable
	// link.
	Link func(shard, deltas int) error
	// Sleep implements backoff waits; nil uses time.Sleep. Simulations
	// inject a virtual-clock sleep.
	Sleep func(time.Duration)
}

func (c ReplicationConfig) withDefaults() ReplicationConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.JitterSeed == 0 {
		c.JitterSeed = 1
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return c
}

// Replicator applies src's journal to dst. Sync is single-caller (the
// monitor loop); the counters are atomics so scrapes read them live.
type Replicator struct {
	cfg ReplicationConfig
	src *Store
	dst *Store

	// applied[i] is the next src seq shard i expects; dirty[i] forces a
	// full-shard snapshot on the next round.
	applied []uint64
	dirty   []bool
	buf     []Delta
	rng     *rand.Rand

	deltas    atomic.Uint64
	snapshots atomic.Uint64
	retries   atomic.Uint64
	gaps      atomic.Uint64
	failed    atomic.Uint64
	snapGen   atomic.Uint64
	lagBits   atomic.Uint64 // float64 bits: seconds of replication lag
}

// NewReplicator pairs src with its standby dst. bootstrap marks every shard
// dirty so the first Sync snapshots the full table — the path a standby
// takes when it attaches to (or re-attaches after serving as) a primary
// with existing sessions.
func NewReplicator(src, dst *Store, cfg ReplicationConfig, bootstrap bool) *Replicator {
	cfg = cfg.withDefaults()
	r := &Replicator{
		cfg:     cfg,
		src:     src,
		dst:     dst,
		applied: make([]uint64, src.ShardCount()),
		dirty:   make([]bool, src.ShardCount()),
		rng:     rand.New(rand.NewSource(cfg.JitterSeed)),
	}
	for i := range r.applied {
		r.applied[i], _ = src.JournalBounds(i)
		r.dirty[i] = bootstrap
	}
	return r
}

// SyncReport summarizes one Sync round.
type SyncReport struct {
	// DeltasApplied / Snapshots count successful transfers; Gaps counts
	// sequence gaps repaired by snapshot; Retries counts transfer
	// attempts beyond each shard's first; Failed counts shards that
	// exhausted their retry budget and stayed behind.
	DeltasApplied int
	Snapshots     int
	Gaps          int
	Retries       int
	Failed        int
	// LagSeconds is the post-round replication lag: the age (at now) of
	// the oldest journaled delta not yet applied to the standby, 0 when
	// fully caught up.
	LagSeconds float64
}

// Sync pumps every shard's pending deltas (or a repair snapshot) into the
// standby, then refreshes the lag gauge. Deterministic for a seeded config.
func (r *Replicator) Sync(now time.Time) SyncReport {
	var rep SyncReport
	for i := range r.applied {
		r.syncShard(i, &rep)
	}
	rep.LagSeconds = r.computeLag(now)
	r.lagBits.Store(math.Float64bits(rep.LagSeconds))
	return rep
}

// syncShard brings one shard of the standby up to date.
func (r *Replicator) syncShard(i int, rep *SyncReport) {
	if !r.dirty[i] {
		r.buf = r.buf[:0]
		buf, ok := r.src.CopyDeltas(i, r.applied[i], r.buf)
		if ok {
			r.buf = buf
			if len(buf) > 0 {
				r.transfer(i, len(buf), rep, func() {
					r.dst.ApplyDeltas(i, r.buf)
					r.applied[i] = r.buf[len(r.buf)-1].Seq + 1
					r.deltas.Add(uint64(len(r.buf)))
					rep.DeltasApplied += len(r.buf)
				})
			}
			return
		}
		// The ring evicted deltas we never applied: snapshot repair.
		r.dirty[i] = true
		r.gaps.Add(1)
		rep.Gaps++
	}
	r.transfer(i, -1, rep, func() {
		snap := r.src.SnapshotShard(i)
		r.dst.InstallSnapshot(snap)
		r.applied[i] = snap.Seq
		r.dirty[i] = false
		r.snapshots.Add(1)
		r.snapGen.Add(1)
		rep.Snapshots++
	})
}

// transfer runs one guarded transfer with the push-style retry policy,
// invoking apply on success. Returns whether the transfer succeeded.
func (r *Replicator) transfer(shard, deltas int, rep *SyncReport, apply func()) bool {
	backoff := r.cfg.BaseBackoff
	for attempt := 1; ; attempt++ {
		var err error
		if r.cfg.Link != nil {
			err = r.cfg.Link(shard, deltas)
		}
		if err == nil {
			apply()
			return true
		}
		if attempt >= r.cfg.MaxAttempts {
			r.failed.Add(1)
			rep.Failed++
			return false
		}
		r.retries.Add(1)
		rep.Retries++
		// ±25% deterministic jitter, the pushNode policy.
		d := backoff + time.Duration((r.rng.Float64()-0.5)*0.5*float64(backoff))
		r.cfg.Sleep(d)
		if backoff *= 2; backoff > r.cfg.MaxBackoff {
			backoff = r.cfg.MaxBackoff
		}
	}
}

// computeLag returns the age of the oldest unapplied journaled delta.
func (r *Replicator) computeLag(now time.Time) float64 {
	nowStamp := r.src.stamp(now)
	lag := float64(0)
	for i := range r.applied {
		first, next := r.src.JournalBounds(i)
		from := r.applied[i]
		if r.dirty[i] {
			from = first
		}
		if from >= next {
			continue
		}
		r.buf = r.buf[:0]
		if buf, ok := r.src.CopyDeltas(i, from, r.buf); ok && len(buf) > 0 {
			r.buf = buf
			if age := float64(nowStamp) - float64(buf[0].Stamp); age > lag {
				lag = age
			}
		}
	}
	return lag
}

// Lag returns the last computed replication lag in seconds; safe to read
// from any goroutine.
func (r *Replicator) Lag() float64 { return math.Float64frombits(r.lagBits.Load()) }

// carryFrom seeds the replicator's lifetime counters from its predecessor,
// so ReplicationStats (and the metrics built on it) stay monotone across
// promotions — each promotion reverses direction with a fresh Replicator,
// and without the carry the admin plane's counters would snap back to zero.
func (r *Replicator) carryFrom(old *Replicator) {
	r.deltas.Store(old.deltas.Load())
	r.snapshots.Store(old.snapshots.Load())
	r.retries.Store(old.retries.Load())
	r.gaps.Store(old.gaps.Load())
	r.failed.Store(old.failed.Load())
	r.snapGen.Store(old.snapGen.Load())
}

// retire zeroes the lag reading of a replicator that stopped pumping: the
// last measured lag described the now-reversed direction, and anything
// still reading the old handle would otherwise report it forever.
func (r *Replicator) retire() { r.lagBits.Store(0) }

// Pending returns shard i's unapplied delta count and whether the shard is
// awaiting a snapshot repair.
func (r *Replicator) Pending(i int) (deltas uint64, dirty bool) {
	_, next := r.src.JournalBounds(i)
	if next > r.applied[i] {
		deltas = next - r.applied[i]
	}
	return deltas, r.dirty[i]
}

// ReplicatorStats snapshots the lifetime counters.
type ReplicatorStats struct {
	DeltasApplied      uint64
	Snapshots          uint64
	Retries            uint64
	Gaps               uint64
	Failed             uint64
	SnapshotGeneration uint64
	LagSeconds         float64
}

// Stats reads the counters; safe from any goroutine.
func (r *Replicator) Stats() ReplicatorStats {
	return ReplicatorStats{
		DeltasApplied:      r.deltas.Load(),
		Snapshots:          r.snapshots.Load(),
		Retries:            r.retries.Load(),
		Gaps:               r.gaps.Load(),
		Failed:             r.failed.Load(),
		SnapshotGeneration: r.snapGen.Load(),
		LagSeconds:         r.Lag(),
	}
}
