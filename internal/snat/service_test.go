package snat

import (
	"strings"
	"sync"
	"testing"
	"time"

	"sailfish/internal/metrics"
	"sailfish/internal/tables"
)

func newTestService() *Service {
	return NewService(ServiceConfig{Store: Config{PublicIPs: pool(2), Shards: 4}})
}

// TestFailoverPreservesSyncedSessions is the subsystem's reason to exist:
// sessions replicated before the switch keep translating — reverse lookups
// included — and the preserved/orphaned pair accounts for exactly the
// replication lag.
func TestFailoverPreservesSyncedSessions(t *testing.T) {
	s := newTestService()
	const synced, unsynced = 400, 25
	for i := uint32(0); i < synced; i++ {
		if _, err := s.Active().Translate(seqKey(i), at(0)); err != nil {
			t.Fatal(err)
		}
	}
	s.Sync(at(1))
	// Sessions created after the last sync round are the standby's blind
	// spot — they must be the orphan count, nothing more.
	for i := uint32(synced); i < synced+unsynced; i++ {
		if _, err := s.Active().Translate(seqKey(i), at(2)); err != nil {
			t.Fatal(err)
		}
	}
	before := make(map[uint32]tables.SNATBinding, synced)
	for i := uint32(0); i < synced; i++ {
		b, ok := s.Active().Lookup(seqKey(i))
		if !ok {
			t.Fatal("session lost before failover")
		}
		before[i] = b
	}
	if !s.Failover() {
		t.Fatal("Failover returned false on first call")
	}
	if s.Failover() {
		t.Fatal("Failover not idempotent")
	}
	if !s.OnBackup() {
		t.Fatal("OnBackup false after failover")
	}
	if got, want := s.Preserved(), uint64(synced); got != want {
		t.Fatalf("preserved = %d, want %d", got, want)
	}
	if got, want := s.Orphaned(), uint64(unsynced); got != want {
		t.Fatalf("orphaned = %d, want %d", got, want)
	}
	if got, want := s.Promotions(), uint64(1); got != want {
		t.Fatalf("promotions = %d, want %d", got, want)
	}
	for i := uint32(0); i < synced; i++ {
		k := seqKey(i)
		b, ok := s.Active().Lookup(k)
		if !ok || b != before[i] {
			t.Fatalf("session %d lost or rebound after failover: %v %v", i, b, ok)
		}
		rk, ok := s.Active().ReverseLookup(b, k.Flow.Dst, k.Flow.DstPort, k.Flow.Proto, at(3))
		if !ok || rk != k {
			t.Fatalf("reverse path broken after failover for %d: %+v %v", i, rk, ok)
		}
	}
}

// TestFailbackRoundTrip runs the full disaster cycle: failover, new sessions
// on the promoted standby, re-bootstrap of the demoted primary, failback —
// sessions survive both switches.
func TestFailbackRoundTrip(t *testing.T) {
	s := newTestService()
	const gen1, gen2 = 200, 120
	for i := uint32(0); i < gen1; i++ {
		if _, err := s.Active().Translate(seqKey(i), at(0)); err != nil {
			t.Fatal(err)
		}
	}
	s.Sync(at(1))
	s.Failover()
	// Life on the backup era: new sessions land on the promoted store.
	for i := uint32(gen1); i < gen1+gen2; i++ {
		if _, err := s.Active().Translate(seqKey(i), at(5)); err != nil {
			t.Fatal(err)
		}
	}
	// Reversed replication re-bootstraps the demoted primary by snapshot.
	rep := s.Sync(at(6))
	if rep.Snapshots == 0 {
		t.Fatalf("reversed replication did not bootstrap the demoted side: %+v", rep)
	}
	if !s.Failback() {
		t.Fatal("Failback returned false")
	}
	if s.Failback() {
		t.Fatal("Failback not idempotent")
	}
	if s.OnBackup() {
		t.Fatal("still on backup after failback")
	}
	if got, want := s.Preserved(), uint64(gen1+gen1+gen2); got != want {
		t.Fatalf("preserved = %d, want %d (both promotions)", got, want)
	}
	if s.Orphaned() != 0 {
		t.Fatalf("orphaned = %d, want 0 (everything was synced)", s.Orphaned())
	}
	if got := s.Sessions(); got != gen1+gen2 {
		t.Fatalf("Sessions = %d, want %d", got, gen1+gen2)
	}
	for i := uint32(0); i < gen1+gen2; i++ {
		k := seqKey(i)
		b, ok := s.Active().Lookup(k)
		if !ok {
			t.Fatalf("session %d lost across the round trip", i)
		}
		if rk, ok := s.Active().ReverseLookup(b, k.Flow.Dst, k.Flow.DstPort, k.Flow.Proto, at(7)); !ok || rk != k {
			t.Fatalf("reverse path broken after round trip for %d", i)
		}
	}
}

func TestServiceShardHealths(t *testing.T) {
	s := newTestService()
	for i := uint32(0); i < 100; i++ {
		if _, err := s.Active().Translate(seqKey(i), at(0)); err != nil {
			t.Fatal(err)
		}
	}
	hs := s.ShardHealths()
	if len(hs) != 4 {
		t.Fatalf("%d shard rows, want 4", len(hs))
	}
	live, pending := 0, uint64(0)
	for _, h := range hs {
		live += h.Live
		pending += h.PendingDelta
	}
	if live != 100 || pending != 100 {
		t.Fatalf("live=%d pending=%d, want 100/100 before sync", live, pending)
	}
	s.Sync(at(1))
	pending = 0
	for _, h := range s.ShardHealths() {
		pending += h.PendingDelta
	}
	if pending != 0 {
		t.Fatalf("pending=%d after sync", pending)
	}
}

func TestServiceMetrics(t *testing.T) {
	s := newTestService()
	reg := metrics.NewRegistry()
	s.RegisterMetrics(reg)
	if _, err := s.Active().Translate(seqKey(1), at(0)); err != nil {
		t.Fatal(err)
	}
	s.Sync(at(1))
	s.Failover()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"sailfish_snat_sessions_preserved_total 1",
		"sailfish_snat_sessions_orphaned_total 0",
		"sailfish_snat_promotions_total 1",
		"sailfish_snat_replication_lag_seconds",
		"sailfish_snat_sessions 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestServiceConcurrentTranslateSyncScrape drives the full concurrent shape
// the region runs — data-plane translates, the monitor's Sync pump, and
// metric scrapes — under the race detector (Makefile RACE_PKGS).
func TestServiceConcurrentTranslateSyncScrape(t *testing.T) {
	s := newTestService()
	reg := metrics.NewRegistry()
	s.RegisterMetrics(reg)
	var wg sync.WaitGroup
	const workers, per = 4, 1500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := seqKey(uint32(w*per + i))
				if _, err := s.Active().Translate(k, at(int64(i))); err != nil {
					t.Error(err)
					return
				}
				s.Active().Touch(k, at(int64(i)))
			}
		}(w)
	}
	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(2)
	go func() {
		defer aux.Done()
		i := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
				s.Sync(at(i))
				i++
			}
		}
	}()
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				if err := reg.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
				_ = s.ShardHealths()
			}
		}
	}()
	wg.Wait()
	close(stop)
	aux.Wait()
	s.Sync(at(1 << 20))
	if got := s.Standby().Sessions(); got != workers*per {
		t.Fatalf("standby holds %d sessions, want %d", got, workers*per)
	}
}

// TestPromotionRehomesLagAndCarriesCounters pins the failover observability
// contract: the replication-lag gauge re-homes to the new direction when
// the standby is promoted — the pre-failover lag must not linger on either
// replicator handle — and the lifetime replication counters carry forward,
// never moving backwards across a promotion.
func TestPromotionRehomesLagAndCarriesCounters(t *testing.T) {
	s := newTestService()
	for i := uint32(0); i < 300; i++ {
		if _, err := s.Active().Translate(seqKey(i), at(0)); err != nil {
			t.Fatal(err)
		}
	}
	s.Sync(at(1))
	before := s.ReplicationStats()
	if before.DeltasApplied == 0 {
		t.Fatal("first sync applied nothing; test setup is wrong")
	}

	// A festival burst the standby never hears about: the link dies, so the
	// lag gauge climbs to the age of the oldest stranded delta.
	s.SetReplication(ReplicationConfig{
		Link:  func(int, int) error { return ErrLinkDown },
		Sleep: func(time.Duration) {},
	})
	for i := uint32(300); i < 350; i++ {
		if _, err := s.Active().Translate(seqKey(i), at(2)); err != nil {
			t.Fatal(err)
		}
	}
	s.Sync(at(10))
	oldRepl := s.repl
	if lag := s.ReplicationStats().LagSeconds; lag < 7 {
		t.Fatalf("dead link should strand deltas and raise the lag gauge, got %.1fs", lag)
	}
	failedBefore := s.ReplicationStats().Failed
	if failedBefore == 0 {
		t.Fatal("dead link should have booked failed shards")
	}

	// Promotion: the gauge must read the new direction (nothing pumped yet
	// → 0), not the stale pre-failover value, and the retired replicator's
	// own reading falls to zero for anything still holding the old handle.
	if !s.Failover() {
		t.Fatal("failover did not switch")
	}
	if lag := s.ReplicationStats().LagSeconds; lag != 0 {
		t.Fatalf("lag gauge stale after promotion: %.1fs", lag)
	}
	if lag := oldRepl.Lag(); lag != 0 {
		t.Fatalf("retired replicator still reports %.1fs of lag", lag)
	}
	after := s.ReplicationStats()
	if after.DeltasApplied < before.DeltasApplied || after.Failed < failedBefore {
		t.Fatalf("replication counters moved backwards across promotion: before deltas=%d failed=%d, after deltas=%d failed=%d",
			before.DeltasApplied, failedBefore, after.DeltasApplied, after.Failed)
	}

	// Heal the link: the reversed pump bootstraps the demoted side and the
	// gauge tracks the fresh direction.
	s.SetReplication(ReplicationConfig{Sleep: func(time.Duration) {}})
	rep := s.Sync(at(11))
	if rep.Snapshots == 0 {
		t.Fatal("post-promotion bootstrap should snapshot the demoted side")
	}
	if lag := s.ReplicationStats().LagSeconds; lag != 0 {
		t.Fatalf("caught-up lag should read 0, got %.1fs", lag)
	}
}
