package snat

import (
	"sync"
	"sync/atomic"
	"time"

	"sailfish/internal/metrics"
)

// Service pairs a primary session store with a standby replica and owns the
// promotion protocol. The data plane only ever talks to Active(); the
// recovery loop drives Sync every round and calls Failover/Failback when the
// cluster-level ladder switches sides — after which established sessions
// keep translating (reverse lookups included) because the standby has been
// replaying the primary's journal all along.
//
// Promotion accounts its own honesty: sessions present on the promoted side
// with the same binding count as preserved, sessions the standby never heard
// about (or heard wrong) count as orphaned. The pair is exported as
// sailfish_snat_sessions_preserved_total / _orphaned_total.
type Service struct {
	mu   sync.Mutex
	cfg  ServiceConfig
	a, b *Store // a is the initial primary, b the standby

	active   atomic.Pointer[Store]
	repl     *Replicator
	onBackup atomic.Bool

	preserved  atomic.Uint64
	orphaned   atomic.Uint64
	promotions atomic.Uint64

	// onPromotion, when set, is told about each completed promotion — the
	// seam the ops journal uses to log failover/failback session outcomes.
	onPromotion func(kind string, preserved, orphaned uint64)
}

// ServiceConfig shapes the pair.
type ServiceConfig struct {
	// Store shapes both stores identically (same shards, pool, epoch). A
	// zero JournalDepth is raised to 4096 — a service exists to replicate.
	Store Config
	// Replication tunes the standby sync policy.
	Replication ReplicationConfig
}

// NewService builds the primary/standby pair with the primary active.
func NewService(cfg ServiceConfig) *Service {
	if cfg.Store.JournalDepth <= 0 {
		cfg.Store.JournalDepth = 4096
	}
	s := &Service{
		cfg: cfg,
		a:   New(cfg.Store),
		b:   New(cfg.Store),
	}
	s.active.Store(s.a)
	s.repl = NewReplicator(s.a, s.b, cfg.Replication, false)
	return s
}

// Active returns the store the data plane must use; safe from any
// goroutine, and stable within one packet's processing.
func (s *Service) Active() *Store { return s.active.Load() }

// Standby returns the passive store (tests and the admin plane).
func (s *Service) Standby() *Store {
	if s.Active() == s.a {
		return s.b
	}
	return s.a
}

// OnBackup reports whether the standby side is serving.
func (s *Service) OnBackup() bool { return s.onBackup.Load() }

// SetReplication replaces the replication tuning — link hook, retry
// policy, sleep — for the current replicator and every one built by future
// promotions. This is the seam simulations use to lose replication traffic
// on the same code path production transfers take.
func (s *Service) SetReplication(cfg ReplicationConfig) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.Replication = cfg
	s.repl.cfg = cfg.withDefaults()
}

// Sync pumps pending journal deltas (or repair snapshots) from the active
// store into the standby. Call it from the recovery loop every round.
func (s *Service) Sync(now time.Time) SyncReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repl.Sync(now)
}

// Failover promotes the standby: the replicated table becomes the one the
// data plane translates against, and replication reverses direction with a
// full-snapshot bootstrap of the demoted side. Idempotent; reports whether
// this call performed the switch.
func (s *Service) Failover() bool {
	s.mu.Lock()
	if s.onBackup.Load() {
		s.mu.Unlock()
		return false
	}
	preserved, orphaned := s.promote(s.a, s.b)
	s.onBackup.Store(true)
	sink := s.onPromotion
	s.mu.Unlock()
	if sink != nil {
		sink("failover", preserved, orphaned)
	}
	return true
}

// Failback returns service to the primary side once the recovery ladder
// does — by then the primary has been re-bootstrapped from the serving
// standby, so sessions survive the second switch too. Idempotent.
func (s *Service) Failback() bool {
	s.mu.Lock()
	if !s.onBackup.Load() {
		s.mu.Unlock()
		return false
	}
	preserved, orphaned := s.promote(s.b, s.a)
	s.onBackup.Store(false)
	sink := s.onPromotion
	s.mu.Unlock()
	if sink != nil {
		sink("failback", preserved, orphaned)
	}
	return true
}

// SetPromotionSink installs a callback invoked (outside the lock) after each
// promotion with its direction and session outcome. Pass nil to detach.
func (s *Service) SetPromotionSink(fn func(kind string, preserved, orphaned uint64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onPromotion = fn
}

// promote diffs the demoted store against the newly serving one (the
// preserved/orphaned accounting), swaps the active pointer, and reverses
// replication with a bootstrap snapshot of the demoted side. The outgoing
// replicator is retired — its lag reading described the old direction and
// must fall to zero, not linger at the pre-failover value — and its
// lifetime counters carry into the successor so the exported replication
// stats never move backwards across a promotion.
func (s *Service) promote(from, to *Store) (preserved, orphaned uint64) {
	for i := 0; i < from.ShardCount(); i++ {
		from.rangeLive(i, func(r *record) {
			ipIdx, port, ok := to.bindingOf(i, r.k1, r.k2)
			if ok && ipIdx == r.ipIdx && port == r.port {
				preserved++
			} else {
				orphaned++
			}
		})
	}
	s.preserved.Add(preserved)
	s.orphaned.Add(orphaned)
	s.promotions.Add(1)
	s.active.Store(to)
	old := s.repl
	old.retire()
	s.repl = NewReplicator(to, from, s.cfg.Replication, true)
	s.repl.carryFrom(old)
	return preserved, orphaned
}

// Sessions returns the serving store's live session count.
func (s *Service) Sessions() int { return s.Active().Sessions() }

// Preserved returns sessions that survived promotions with their binding
// intact; Orphaned the ones the standby missed; Promotions the switch count.
func (s *Service) Preserved() uint64  { return s.preserved.Load() }
func (s *Service) Orphaned() uint64   { return s.orphaned.Load() }
func (s *Service) Promotions() uint64 { return s.promotions.Load() }

// ReplicationStats snapshots the current replicator's lifetime counters.
func (s *Service) ReplicationStats() ReplicatorStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repl.Stats()
}

// ShardHealth is one shard's replication view for the admin plane.
type ShardHealth struct {
	Shard        int
	Live         int
	Slots        int
	PortCapacity int
	JournalDepth uint64
	PendingDelta uint64
	AwaitingSnap bool
}

// ShardHealths snapshots every shard's occupancy and replication position.
func (s *Service) ShardHealths() []ShardHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	act := s.Active()
	out := make([]ShardHealth, act.ShardCount())
	for i := range out {
		ss := act.StatsShard(i)
		pending, dirty := s.repl.Pending(i)
		out[i] = ShardHealth{
			Shard:        i,
			Live:         ss.Live,
			Slots:        ss.Slots,
			PortCapacity: ss.PortCapacity,
			JournalDepth: ss.JournalNext - ss.JournalFirst,
			PendingDelta: pending,
			AwaitingSnap: dirty,
		}
	}
	return out
}

// RegisterMetrics publishes the service's counters into a live registry.
func (s *Service) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("sailfish_snat_sessions_preserved_total",
		"sessions that survived a failover promotion with their binding intact", nil,
		s.preserved.Load)
	reg.CounterFunc("sailfish_snat_sessions_orphaned_total",
		"sessions lost or rebound across a failover promotion", nil,
		s.orphaned.Load)
	reg.CounterFunc("sailfish_snat_promotions_total",
		"standby promotions (failover and failback)", nil,
		s.promotions.Load)
	reg.GaugeFunc("sailfish_snat_sessions",
		"live SNAT sessions on the serving store", nil,
		func() float64 { return float64(s.Sessions()) })
	reg.GaugeFunc("sailfish_snat_replication_lag_seconds",
		"age of the oldest journaled delta not yet applied to the standby", nil,
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.repl.Lag()
		})
}
