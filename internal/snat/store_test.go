package snat

import (
	"encoding/binary"
	"net/netip"
	"sync"
	"testing"
	"time"
	"unsafe"

	"sailfish/internal/netpkt"
	"sailfish/internal/tables"
)

func pool(n int) []netip.Addr {
	out := make([]netip.Addr, n)
	for i := range out {
		out[i] = netip.AddrFrom4([4]byte{203, 0, 113, byte(10 + i)})
	}
	return out
}

// seqKey builds the i-th distinct IPv4 session key.
func seqKey(i uint32) tables.SNATKey {
	var s [4]byte
	binary.BigEndian.PutUint32(s[:], 0x0a_00_00_00+i)
	return tables.SNATKey{
		VNI: 42,
		Flow: netpkt.Flow{
			Src:     netip.AddrFrom4(s),
			Dst:     netip.MustParseAddr("93.184.216.34"),
			Proto:   netpkt.IPProtocolTCP,
			SrcPort: uint16(1024 + i%60000),
			DstPort: 443,
		},
	}
}

func at(sec int64) time.Time { return time.Unix(sec, 0) }

// TestRecordPacking pins the ≤32 B/session record envelope the store's
// memory math (100M sessions ≈ 3 GB of records) depends on.
func TestRecordPacking(t *testing.T) {
	if got := unsafe.Sizeof(record{}); got != recordBytes {
		t.Fatalf("record is %d bytes, want %d", got, recordBytes)
	}
	if got := unsafe.Sizeof(Delta{}); got != deltaBytes {
		t.Fatalf("Delta is %d bytes, want %d", got, deltaBytes)
	}
}

func TestPackKeyRoundTrip(t *testing.T) {
	k := seqKey(12345)
	k1, k2, ok := packKey(k)
	if !ok {
		t.Fatal("packKey rejected an IPv4 key")
	}
	if got := unpackKey(k1, k2); got != k {
		t.Fatalf("unpack(pack(k)) = %+v, want %+v", got, k)
	}
	v6 := k
	v6.Flow.Src = netip.MustParseAddr("2001:db8::1")
	if _, _, ok := packKey(v6); ok {
		t.Fatal("packKey accepted an IPv6 key")
	}
}

func TestTranslateStableAndDistinct(t *testing.T) {
	st := New(Config{PublicIPs: pool(2), Shards: 8})
	b1, err := st.Translate(seqKey(1), at(0))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := st.Translate(seqKey(2), at(0))
	if err != nil {
		t.Fatal(err)
	}
	if b1 == b2 {
		t.Fatalf("two sessions share binding %v", b1)
	}
	again, err := st.Translate(seqKey(1), at(5))
	if err != nil {
		t.Fatal(err)
	}
	if again != b1 {
		t.Fatalf("binding moved: %v -> %v", b1, again)
	}
	if got, ok := st.Lookup(seqKey(1)); !ok || got != b1 {
		t.Fatalf("Lookup = %v %v", got, ok)
	}
	if st.Sessions() != 2 {
		t.Fatalf("Sessions = %d, want 2", st.Sessions())
	}
}

func TestTranslateNotIPv4(t *testing.T) {
	st := New(Config{PublicIPs: pool(1)})
	k := seqKey(1)
	k.Flow.Dst = netip.MustParseAddr("2001:db8::2")
	if _, err := st.Translate(k, at(0)); err != ErrNotIPv4 {
		t.Fatalf("err = %v, want ErrNotIPv4", err)
	}
}

func TestReverseLookupRoundTrip(t *testing.T) {
	st := New(Config{PublicIPs: pool(3), Shards: 16})
	for i := uint32(0); i < 500; i++ {
		k := seqKey(i)
		b, err := st.Translate(k, at(0))
		if err != nil {
			t.Fatal(err)
		}
		got, ok := st.ReverseLookup(b, k.Flow.Dst, k.Flow.DstPort, k.Flow.Proto, at(1))
		if !ok || got != k {
			t.Fatalf("ReverseLookup(%v) = %+v %v, want %+v", b, got, ok, k)
		}
		// A stray packet from the wrong peer is not this session.
		if _, ok := st.ReverseLookup(b, k.Flow.Dst, k.Flow.DstPort+1, k.Flow.Proto, at(1)); ok {
			t.Fatal("ReverseLookup matched the wrong peer port")
		}
	}
	if _, ok := st.ReverseLookup(tables.SNATBinding{
		PublicIP: netip.MustParseAddr("198.51.100.1"), PublicPort: 2000,
	}, netip.MustParseAddr("1.2.3.4"), 443, netpkt.IPProtocolTCP, at(1)); ok {
		t.Fatal("ReverseLookup matched an IP outside the pool")
	}
}

func TestReleaseRecyclesBinding(t *testing.T) {
	st := New(Config{PublicIPs: pool(1), Shards: 1})
	k := seqKey(1)
	b, err := st.Translate(k, at(0))
	if err != nil {
		t.Fatal(err)
	}
	if !st.Release(k) {
		t.Fatal("Release returned false for a live session")
	}
	if st.Release(k) {
		t.Fatal("double Release returned true")
	}
	if _, ok := st.ReverseLookup(b, k.Flow.Dst, k.Flow.DstPort, k.Flow.Proto, at(1)); ok {
		t.Fatal("released session still reverse-resolves")
	}
	if st.Sessions() != 0 {
		t.Fatalf("Sessions = %d after release", st.Sessions())
	}
	// The freed (IP, port) must be reallocatable: exhaust the shard's port
	// range and confirm no pair is lost.
	seen := map[tables.SNATBinding]bool{}
	for i := uint32(0); ; i++ {
		bb, err := st.Translate(seqKey(100+i), at(0))
		if err != nil {
			break
		}
		if seen[bb] {
			t.Fatalf("binding %v allocated twice", bb)
		}
		seen[bb] = true
	}
	if len(seen) != portSpace {
		t.Fatalf("allocated %d bindings, want %d", len(seen), portSpace)
	}
}

func TestExhaustion(t *testing.T) {
	st := New(Config{PublicIPs: nil})
	if _, err := st.Translate(seqKey(1), at(0)); err != ErrExhausted {
		t.Fatalf("empty pool: err = %v, want ErrExhausted", err)
	}
	st = New(Config{PublicIPs: pool(1), Shards: 4})
	// One shard's slice of a single IP's ports.
	perShard := portSpace / 4
	k := seqKey(7)
	s := st.shardFor(k)
	filled := 0
	for i := uint32(0); int(i) < portSpace; i++ {
		kk := seqKey(7 + i*4096) // vary; keep only those landing on k's shard
		if st.shardFor(kk) != s {
			continue
		}
		if _, err := st.Translate(kk, at(0)); err != nil {
			if err != ErrExhausted {
				t.Fatalf("err = %v", err)
			}
			break
		}
		filled++
	}
	if filled != perShard {
		t.Fatalf("shard accepted %d sessions, want its port slice %d", filled, perShard)
	}
}

func TestExpireIdleFullSweep(t *testing.T) {
	st := New(Config{PublicIPs: pool(2), Shards: 8})
	for i := uint32(0); i < 100; i++ {
		if _, err := st.Translate(seqKey(i), at(0)); err != nil {
			t.Fatal(err)
		}
	}
	// Refresh half at t=50.
	for i := uint32(0); i < 50; i++ {
		st.Touch(seqKey(i), at(50))
	}
	if n := st.ExpireIdle(at(60), 30*time.Second); n != 50 {
		t.Fatalf("expired %d, want 50", n)
	}
	if st.Sessions() != 50 {
		t.Fatalf("Sessions = %d, want 50", st.Sessions())
	}
	for i := uint32(0); i < 50; i++ {
		if _, ok := st.Lookup(seqKey(i)); !ok {
			t.Fatalf("refreshed session %d was reaped", i)
		}
	}
}

// TestReapIdleIncremental drives the bounded-cursor reaper: each call scans
// a fixed slot budget, so aging completes over several calls instead of one
// full-table stall.
func TestReapIdleIncremental(t *testing.T) {
	st := New(Config{PublicIPs: pool(2), Shards: 2})
	const n = 2000
	for i := uint32(0); i < n; i++ {
		if _, err := st.Translate(seqKey(i), at(0)); err != nil {
			t.Fatal(err)
		}
	}
	slots := 0
	for i := 0; i < st.ShardCount(); i++ {
		slots += st.StatsShard(i).Slots
	}
	budget := slots / 8
	reaped, calls := 0, 0
	for reaped < n {
		calls++
		if calls > 100 {
			t.Fatalf("reaper stalled: %d/%d after %d calls", reaped, n, calls)
		}
		got := st.ReapIdle(at(3600), time.Second, budget)
		if got > budget {
			t.Fatalf("one call reaped %d > budget %d", got, budget)
		}
		reaped += got
	}
	if st.Sessions() != 0 {
		t.Fatalf("Sessions = %d after full reap", st.Sessions())
	}
	// Idle sessions under ttl survive the scan.
	if _, err := st.Translate(seqKey(0), at(3600)); err != nil {
		t.Fatal(err)
	}
	if got := st.ReapIdle(at(3600), time.Hour, slots); got != 0 {
		t.Fatalf("reaped %d fresh sessions", got)
	}
}

// TestRehashKeepsReverseIndex grows shards far past the initial slot table
// and checks the port-owner index follows the moved slots.
// TestShardDistributionEven guards the shard-selection mix: realistic
// traffic (few client IPs, sequential source ports, one server) must spread
// across shards instead of piling onto a few — FNV-1a's raw low bits do
// exactly that pile-up, exhausting some shards' port spaces while others
// sit empty.
func TestShardDistributionEven(t *testing.T) {
	st := New(Config{PublicIPs: pool(2), Shards: 8})
	const n = 40000
	counts := make([]int, st.ShardCount())
	for i := uint32(0); i < n; i++ {
		counts[st.shardIndex(seqKey(i))]++
	}
	mean := n / st.ShardCount()
	for s, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Fatalf("shard %d holds %d of %d keys (mean %d): distribution skewed %v",
				s, c, n, mean, counts)
		}
	}
}

func TestRehashKeepsReverseIndex(t *testing.T) {
	st := New(Config{PublicIPs: pool(4), Shards: 2})
	const n = 20000 // >> initial 1024 slots per shard: multiple rehashes
	for i := uint32(0); i < n; i++ {
		if _, err := st.Translate(seqKey(i), at(0)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint32(0); i < n; i += 97 {
		k := seqKey(i)
		b, ok := st.Lookup(k)
		if !ok {
			t.Fatalf("session %d lost after rehash", i)
		}
		got, ok := st.ReverseLookup(b, k.Flow.Dst, k.Flow.DstPort, k.Flow.Proto, at(1))
		if !ok || got != k {
			t.Fatalf("reverse index stale after rehash: %v -> %+v %v", b, got, ok)
		}
	}
}

// TestTranslateZeroAllocs pins the hot paths at zero allocations per op —
// the envelope the fastpath bench guards in CI.
func TestTranslateZeroAllocs(t *testing.T) {
	st := New(Config{PublicIPs: pool(2), Shards: 8})
	k := seqKey(1)
	b, err := st.Translate(k, at(0))
	if err != nil {
		t.Fatal(err)
	}
	now := at(0) // fixed stamp: the steady hit path, no journal refresh
	if a := testing.AllocsPerRun(200, func() {
		if _, err := st.Translate(k, now); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Fatalf("Translate hit path allocates %.1f/op", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		if _, ok := st.ReverseLookup(b, k.Flow.Dst, k.Flow.DstPort, k.Flow.Proto, now); !ok {
			t.Fatal("lost session")
		}
	}); a != 0 {
		t.Fatalf("ReverseLookup allocates %.1f/op", a)
	}
	if a := testing.AllocsPerRun(200, func() { st.Touch(k, now) }); a != 0 {
		t.Fatalf("Touch allocates %.1f/op", a)
	}
}

// TestSessionsConcurrent exercises the atomic per-shard counters under
// parallel translate/read load; meaningful under -race (Makefile RACE_PKGS).
func TestSessionsConcurrent(t *testing.T) {
	st := New(Config{PublicIPs: pool(4), Shards: 16})
	var wg sync.WaitGroup
	const workers, per = 4, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := seqKey(uint32(w*per + i))
				if _, err := st.Translate(k, at(0)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var rd sync.WaitGroup
	rd.Add(1)
	go func() {
		defer rd.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = st.Sessions()
				_ = st.MemoryBytes()
			}
		}
	}()
	wg.Wait()
	close(stop)
	rd.Wait()
	if got := st.Sessions(); got != workers*per {
		t.Fatalf("Sessions = %d, want %d", got, workers*per)
	}
}

func TestMemoryBytesAccounts(t *testing.T) {
	st := New(Config{PublicIPs: pool(2), Shards: 4, JournalDepth: 128})
	base := st.MemoryBytes()
	if base == 0 {
		t.Fatal("empty store reports zero footprint (port index and journals exist)")
	}
	for i := uint32(0); i < 50000; i++ {
		if _, err := st.Translate(seqKey(i), at(0)); err != nil {
			t.Fatal(err)
		}
	}
	grown := st.MemoryBytes()
	if grown <= base {
		t.Fatalf("footprint did not grow: %d -> %d", base, grown)
	}
	perSession := float64(grown-base) / 50000
	if perSession > 4*recordBytes {
		t.Fatalf("%.1f B/session of table growth; slot tables should stay within 4x the record size", perSession)
	}
}
