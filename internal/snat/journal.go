package snat

// The replication log. Every mutating operation on a primary shard appends
// one delta to that shard's bounded journal; a standby replays the deltas
// in sequence order (replicate.go) so it always holds a promotable copy of
// the session table. The journal is a fixed ring: when the standby falls
// further behind than the ring retains, the gap is detected by sequence
// number and repaired with a full-shard snapshot — the same
// bounded-log-plus-snapshot discipline real state-sync protocols use.

// Delta ops.
const (
	// OpCreate installs a session with its allocated binding.
	OpCreate uint8 = iota + 1
	// OpRefresh updates a session's idle stamp.
	OpRefresh
	// OpRelease tears a session down.
	OpRelease
)

// Delta is one journaled session mutation. Seq numbers are per shard,
// contiguous from 1.
type Delta struct {
	Seq    uint64
	Op     uint8
	K1, K2 uint64
	IPIdx  uint16
	Port   uint16
	Stamp  uint32
}

// deltaBytes is the in-memory size of one Delta, for footprint accounting.
const deltaBytes = 40

// journal is one shard's bounded delta ring. Guarded by the shard mutex.
type journal struct {
	ring []Delta
	// [first, next) is the retained window: next is the seq the next
	// append takes, first the oldest seq still in the ring. first > an
	// applier's cursor means the applier missed deltas (gap → snapshot).
	first, next uint64
}

func (j *journal) init(depth int) {
	if depth > 0 {
		j.ring = make([]Delta, depth)
	}
	j.first, j.next = 1, 1
}

// append journals one delta, evicting the oldest when the ring is full.
// A journal with no ring (depth 0) drops everything — a standalone store
// pays nothing for the feature it does not use.
func (j *journal) append(d Delta) {
	if len(j.ring) == 0 {
		return
	}
	d.Seq = j.next
	j.ring[(j.next-1)%uint64(len(j.ring))] = d
	j.next++
	if j.next-j.first > uint64(len(j.ring)) {
		j.first = j.next - uint64(len(j.ring))
	}
}

// copySince appends deltas [from, next) to buf in sequence order; ok is
// false when from predates the retained window (the applier must snapshot).
func (j *journal) copySince(from uint64, buf []Delta) (_ []Delta, ok bool) {
	if from < j.first {
		return buf, false
	}
	for s := from; s < j.next; s++ {
		buf = append(buf, j.ring[(s-1)%uint64(len(j.ring))])
	}
	return buf, true
}

// JournalBounds returns shard i's retained window [first, next).
func (st *Store) JournalBounds(i int) (first, next uint64) {
	s := &st.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.j.first, s.j.next
}

// CopyDeltas appends shard i's deltas from seq `from` onward to buf; ok is
// false on a sequence gap (from predates the journal's retained window).
func (st *Store) CopyDeltas(i int, from uint64, buf []Delta) (_ []Delta, ok bool) {
	s := &st.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.j.copySince(from, buf)
}

// ApplyDeltas replays a batch of primary deltas onto this store (the
// standby role). Application is idempotent per delta and must happen in
// sequence order within a shard; nothing is re-journaled — a standby's own
// journal only starts filling once it is promoted and takes live traffic.
func (st *Store) ApplyDeltas(shard int, deltas []Delta) {
	s := &st.shards[shard]
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, d := range deltas {
		s.apply(st, d)
	}
}

// apply replays one delta. Callers hold s.mu.
func (s *shard) apply(st *Store, d Delta) {
	switch d.Op {
	case OpCreate:
		// A re-sent create for a key we already hold just updates in
		// place; a binding owned by a stale record is reclaimed (its
		// release delta was folded away by ring eviction before a
		// snapshot repair — the primary's word is authoritative).
		if i := s.find(d.K1, d.K2); i >= 0 {
			r := &s.slots[i]
			if r.ipIdx == d.IPIdx && r.port == d.Port {
				r.idleAt = d.Stamp
				return
			}
			s.release(st, i, false)
		}
		if own := s.portOwner[s.ownerOff(st, d.IPIdx, d.Port)]; own != 0 {
			s.release(st, int(own-1), false)
		}
		s.place(st, record{k1: d.K1, k2: d.K2, ipIdx: d.IPIdx, port: d.Port, idleAt: d.Stamp, state: slotLive})
	case OpRefresh:
		if i := s.find(d.K1, d.K2); i >= 0 {
			s.slots[i].idleAt = d.Stamp
		}
	case OpRelease:
		if i := s.find(d.K1, d.K2); i >= 0 {
			s.release(st, i, false)
		}
	}
}

// ShardSnapshot is a full copy of one shard's live sessions, anchored at
// the journal position Seq: applying the snapshot and then deltas from Seq
// onward reconstructs the shard exactly.
type ShardSnapshot struct {
	Shard   int
	Seq     uint64
	Records []Delta
}

// SnapshotShard captures shard i for standby bootstrap/repair.
func (st *Store) SnapshotShard(i int) ShardSnapshot {
	s := &st.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := ShardSnapshot{Shard: i, Seq: s.j.next, Records: make([]Delta, 0, s.live.Load())}
	for j := range s.slots {
		r := &s.slots[j]
		if r.state != slotLive {
			continue
		}
		snap.Records = append(snap.Records, Delta{
			Op: OpCreate, K1: r.k1, K2: r.k2, IPIdx: r.ipIdx, Port: r.port, Stamp: r.idleAt,
		})
	}
	return snap
}

// InstallSnapshot replaces the shard's contents with the snapshot — the
// standby's bootstrap/repair path after a sequence gap.
func (st *Store) InstallSnapshot(snap ShardSnapshot) {
	s := &st.shards[snap.Shard]
	s.mu.Lock()
	defer s.mu.Unlock()
	s.live.Add(-s.live.Load())
	s.used = 0
	for i := range s.slots {
		s.slots[i] = record{}
	}
	for i := range s.portOwner {
		s.portOwner[i] = 0
	}
	for _, d := range snap.Records {
		s.place(st, record{k1: d.K1, k2: d.K2, ipIdx: d.IPIdx, port: d.Port, idleAt: d.Stamp, state: slotLive})
	}
}
