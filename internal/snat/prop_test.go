package snat

import (
	"math/rand"
	"testing"
	"time"

	"sailfish/internal/tables"
)

// TestPropertyStandbyAgreesWithPrimary is the reverse-path correctness
// property across failover: for ANY interleaving of Translate/Touch/Release
// (plus reaping) replicated as deltas — including journal overflows repaired
// by snapshot, and bindings that were released and reallocated to a
// different session — the standby's ReverseLookup and Lookup agree exactly
// with the primary's. A shadow map is the oracle.
func TestPropertyStandbyAgreesWithPrimary(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1337, 99991} {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			// Tiny journal: overflow (gap -> snapshot) is part of the
			// exercised space, not an edge case. One IP across the maximum
			// shard count leaves each shard only 63 ports, and the key
			// schedule below deliberately collides every key onto one
			// shard, so churn wraps the allocation cursor and released
			// bindings get reallocated to other sessions within the run.
			cfg := Config{PublicIPs: pool(1), Shards: 1024, JournalDepth: 64}
			primary, standby := twin(cfg)
			repl := NewReplicator(primary, standby, ReplicationConfig{}, false)

			// Pick keySpace keys that all map to the first candidate's
			// shard: maximal port-cursor pressure on a 63-port shard.
			const keySpace, ops = 24, 30000
			var keys []tables.SNATKey
			target := primary.shardIndex(seqKey(uint32(seed)))
			for i := uint32(seed); len(keys) < keySpace; i++ {
				if k := seqKey(i); primary.shardIndex(k) == target {
					keys = append(keys, k)
				}
			}

			model := make(map[tables.SNATKey]tables.SNATBinding)
			lastSeen := make(map[tables.SNATKey]int64)
			reallocated := 0
			held := make(map[tables.SNATBinding]tables.SNATKey)
			now := int64(0)

			for op := 0; op < ops; op++ {
				now += int64(rng.Intn(3))
				k := keys[rng.Intn(keySpace)]
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4: // Translate (create or refresh)
					b, err := primary.Translate(k, at(now))
					if err != nil {
						t.Fatal(err)
					}
					if prev, ok := held[b]; ok && prev != k {
						// A binding released earlier now serves a new
						// session — the hardest case for the standby.
						reallocated++
					}
					held[b] = k
					model[k] = b
					lastSeen[k] = now
				case 5, 6: // Touch
					primary.Touch(k, at(now))
					if _, ok := model[k]; ok {
						lastSeen[k] = now
					}
				case 7: // Release
					if primary.Release(k) {
						delete(model, k)
						delete(lastSeen, k)
					}
				case 8: // bounded reap tick
					ttl := 20 * time.Second
					primary.ReapIdle(at(now), ttl, 64)
					for mk, seen := range lastSeen {
						if now-seen >= 20 {
							// May or may not have been visited by the
							// bounded cursor; trust the primary.
							if _, ok := primary.Lookup(mk); !ok {
								delete(model, mk)
								delete(lastSeen, mk)
							}
						}
					}
				case 9: // replication round
					repl.Sync(at(now))
				}
			}
			repl.Sync(at(now))

			if reallocated == 0 {
				t.Fatalf("seed %d never exercised released-then-reallocated bindings; widen the schedule", seed)
			}
			if got, want := standby.Sessions(), len(model); got != want {
				t.Fatalf("seed %d: standby has %d sessions, model %d", seed, got, want)
			}
			for k, b := range model {
				gotP, okP := primary.Lookup(k)
				gotS, okS := standby.Lookup(k)
				if !okP || !okS || gotP != b || gotS != b {
					t.Fatalf("seed %d: key %+v: primary %v %v, standby %v %v, model %v",
						seed, k, gotP, okP, gotS, okS, b)
				}
				rkP, okP := primary.ReverseLookup(b, k.Flow.Dst, k.Flow.DstPort, k.Flow.Proto, at(now))
				rkS, okS := standby.ReverseLookup(b, k.Flow.Dst, k.Flow.DstPort, k.Flow.Proto, at(now))
				if !okP || !okS || rkP != k || rkS != k {
					t.Fatalf("seed %d: binding %v: primary reverse %+v %v, standby reverse %+v %v",
						seed, b, rkP, okP, rkS, okS)
				}
			}
		})
	}
}
