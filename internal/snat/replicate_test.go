package snat

import (
	"testing"
	"time"
)

func twin(cfg Config) (*Store, *Store) {
	return New(cfg), New(cfg)
}

// assertMirrors checks that dst holds exactly src's sessions with identical
// bindings, both directions.
func assertMirrors(t *testing.T, src, dst *Store, n uint32) {
	t.Helper()
	if src.Sessions() != dst.Sessions() {
		t.Fatalf("sessions: src %d, dst %d", src.Sessions(), dst.Sessions())
	}
	for i := uint32(0); i < n; i++ {
		k := seqKey(i)
		want, okS := src.Lookup(k)
		got, okD := dst.Lookup(k)
		if okS != okD || want != got {
			t.Fatalf("session %d: src %v %v, dst %v %v", i, want, okS, got, okD)
		}
		if !okS {
			continue
		}
		rk, ok := dst.ReverseLookup(want, k.Flow.Dst, k.Flow.DstPort, k.Flow.Proto, at(0))
		if !ok || rk != k {
			t.Fatalf("standby reverse path broken for %d: %+v %v", i, rk, ok)
		}
	}
}

func TestDeltaSyncMirrors(t *testing.T) {
	cfg := Config{PublicIPs: pool(2), Shards: 4, JournalDepth: 4096}
	src, dst := twin(cfg)
	r := NewReplicator(src, dst, ReplicationConfig{}, false)
	const n = 300
	for i := uint32(0); i < n; i++ {
		if _, err := src.Translate(seqKey(i), at(0)); err != nil {
			t.Fatal(err)
		}
	}
	rep := r.Sync(at(1))
	if rep.DeltasApplied != n || rep.Snapshots != 0 || rep.Gaps != 0 {
		t.Fatalf("sync report = %+v", rep)
	}
	assertMirrors(t, src, dst, n)
	// Releases and refreshes flow through too.
	for i := uint32(0); i < n; i += 2 {
		src.Release(seqKey(i))
	}
	for i := uint32(1); i < n; i += 2 {
		src.Touch(seqKey(i), at(9))
	}
	r.Sync(at(10))
	assertMirrors(t, src, dst, n)
	// Idempotent: an empty round applies nothing.
	if rep := r.Sync(at(11)); rep.DeltasApplied != 0 || rep.Snapshots != 0 {
		t.Fatalf("idle sync did work: %+v", rep)
	}
}

// TestGapTriggersSnapshot overflows a tiny journal so the standby detects
// the sequence gap and repairs via full-shard snapshot.
func TestGapTriggersSnapshot(t *testing.T) {
	cfg := Config{PublicIPs: pool(2), Shards: 2, JournalDepth: 8}
	src, dst := twin(cfg)
	r := NewReplicator(src, dst, ReplicationConfig{}, false)
	const n = 500 // >> 2 shards x 8 deltas retained
	for i := uint32(0); i < n; i++ {
		if _, err := src.Translate(seqKey(i), at(0)); err != nil {
			t.Fatal(err)
		}
	}
	rep := r.Sync(at(1))
	if rep.Gaps == 0 || rep.Snapshots == 0 {
		t.Fatalf("expected gap->snapshot repair, got %+v", rep)
	}
	assertMirrors(t, src, dst, n)
	st := r.Stats()
	if st.Gaps != uint64(rep.Gaps) || st.SnapshotGeneration == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRetryBackoffJitter loses the first attempts of every transfer and
// checks the pushNode-style policy: counted retries, doubling backoff with
// +-25% jitter, eventual success.
func TestRetryBackoffJitter(t *testing.T) {
	cfg := Config{PublicIPs: pool(1), Shards: 1, JournalDepth: 1024}
	src, dst := twin(cfg)
	failures := 2
	var slept []time.Duration
	r := NewReplicator(src, dst, ReplicationConfig{
		MaxAttempts: 4,
		BaseBackoff: 50 * time.Millisecond,
		MaxBackoff:  time.Second,
		JitterSeed:  7,
		Link: func(shard, deltas int) error {
			if failures > 0 {
				failures--
				return ErrLinkDown
			}
			return nil
		},
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	}, false)
	if _, err := src.Translate(seqKey(1), at(0)); err != nil {
		t.Fatal(err)
	}
	rep := r.Sync(at(1))
	if rep.Retries != 2 || rep.DeltasApplied != 1 || rep.Failed != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	for i, base := range []time.Duration{50 * time.Millisecond, 100 * time.Millisecond} {
		lo, hi := base*3/4, base*5/4
		if slept[i] < lo || slept[i] > hi {
			t.Fatalf("backoff %d = %v, want within +-25%% of %v", i, slept[i], base)
		}
	}
	assertMirrors(t, src, dst, 2)
}

// TestLinkDownLeavesShardBehind exhausts the retry budget, verifies the
// standby is untouched and the lag gauge rises, then heals the link and
// verifies catch-up.
func TestLinkDownLeavesShardBehind(t *testing.T) {
	cfg := Config{PublicIPs: pool(1), Shards: 1, JournalDepth: 1024}
	src, dst := twin(cfg)
	down := true
	r := NewReplicator(src, dst, ReplicationConfig{
		MaxAttempts: 3,
		Sleep:       func(time.Duration) {},
		Link: func(shard, deltas int) error {
			if down {
				return ErrLinkDown
			}
			return nil
		},
	}, false)
	if _, err := src.Translate(seqKey(1), at(0)); err != nil {
		t.Fatal(err)
	}
	rep := r.Sync(at(30))
	if rep.Failed != 1 || rep.DeltasApplied != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if dst.Sessions() != 0 {
		t.Fatal("failed transfer mutated the standby")
	}
	if rep.LagSeconds < 29 || r.Lag() < 29 {
		t.Fatalf("lag = %v/%v, want ~30s (delta created at t=0, now t=30)", rep.LagSeconds, r.Lag())
	}
	down = false
	rep = r.Sync(at(31))
	if rep.DeltasApplied != 1 || rep.LagSeconds != 0 {
		t.Fatalf("catch-up report = %+v", rep)
	}
	assertMirrors(t, src, dst, 2)
}

// TestBootstrapSnapshot covers NewReplicator's bootstrap mode: attaching a
// fresh standby to a primary that already holds sessions.
func TestBootstrapSnapshot(t *testing.T) {
	cfg := Config{PublicIPs: pool(2), Shards: 4, JournalDepth: 16}
	src, dst := twin(cfg)
	const n = 200
	for i := uint32(0); i < n; i++ {
		if _, err := src.Translate(seqKey(i), at(0)); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReplicator(src, dst, ReplicationConfig{}, true)
	rep := r.Sync(at(1))
	if rep.Snapshots != 4 {
		t.Fatalf("bootstrap synced %d snapshots, want one per shard (4): %+v", rep.Snapshots, rep)
	}
	assertMirrors(t, src, dst, n)
}
