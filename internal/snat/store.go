// Package snat is the survivable stateful source-NAT subsystem held by the
// XGW-x86 pool (§4.2, Fig. 11). Production session counts reach O(100M) —
// far beyond switch SRAM, which is exactly why the table lives in software
// DRAM — so the store is built for that scale:
//
//   - N power-of-two shards selected by the same end-to-end flow hash the
//     front end and the NIC RSS use, so one session always lands on one
//     shard and shards never coordinate;
//   - each shard is a compact open-addressed table of 32-byte packed
//     records (public-IP pool index + port + packed idle stamp), so 100M
//     sessions fits in a few GB of resident records;
//   - per-shard port allocators: the public port range is partitioned
//     across shards, which doubles as the reverse-path routing function —
//     a response's destination port alone names the owning shard;
//   - incremental idle reaping with a bounded per-call scan cursor, so
//     aging never stalls the data plane the way a full-table sweep does;
//   - a bounded per-shard delta journal (journal.go) a standby replays to
//     keep a promotable copy (replicate.go, service.go).
//
// The store is safe for concurrent use; each operation takes one shard
// mutex. The hot paths (Translate, ReverseLookup, Touch) are allocation-free.
package snat

import (
	"encoding/binary"
	"errors"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"sailfish/internal/netpkt"
	"sailfish/internal/tables"
)

// Store errors. Port exhaustion intentionally reuses the legacy sentinel so
// callers (and the xgw86 drop taxonomy) need no new case.
var (
	// ErrExhausted reports that no public IP/port is free in the session's
	// shard.
	ErrExhausted = tables.ErrSNATExhausted
	// ErrNotIPv4 reports a session key whose addresses are not IPv4;
	// production SNAT is IPv4-only (v6 uses different prefixes entirely).
	ErrNotIPv4 = errors.New("snat: session key is not IPv4")
)

// snatPortMin is the first allocatable source port; low ports are reserved.
// Identical to the legacy tables.SNATTable policy.
const snatPortMin = 1024

// portSpace is the allocatable port count per public IP.
const portSpace = 65536 - snatPortMin

// Config shapes a sharded store.
type Config struct {
	// PublicIPs is the SNAT public address pool, shared by every shard
	// (each shard owns a disjoint port range on every IP).
	PublicIPs []netip.Addr
	// Shards is the shard count; power of two in [1, 1024], default 8.
	Shards int
	// JournalDepth bounds each shard's replication journal (delta count);
	// 0 disables journaling (standalone store with no standby).
	JournalDepth int
	// Epoch anchors the packed 32-bit idle stamps (seconds since Epoch).
	// Zero means time.Unix(0, 0); a store and its standby must agree.
	Epoch time.Time
}

// withDefaults normalizes a config.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	// Round down to a power of two and keep the port partition exact:
	// portSpace = 64512 = 1024 × 63 divides evenly by any power of two up
	// to 1024.
	for c.Shards&(c.Shards-1) != 0 {
		c.Shards &= c.Shards - 1
	}
	if c.Shards > 1024 {
		c.Shards = 1024
	}
	if c.Epoch.IsZero() {
		c.Epoch = time.Unix(0, 0)
	}
	return c
}

// Slot states. Deletion tombstones keep probe chains intact and keep live
// slot indexes stable for the port-owner index; rehashes purge them.
const (
	slotEmpty uint8 = iota
	slotLive
	slotTomb
)

// record is one packed session: 32 bytes, no pointers, so 100M sessions is
// ~3 GB of records and the GC never walks them.
//
//	k1     — inner src IPv4 (hi 32) | inner dst IPv4 (lo 32)
//	k2     — VNI (24 bits) | proto (8) | src port (16) | dst port (16)
//	ipIdx  — index into the public-IP pool
//	port   — allocated public port
//	idleAt — last-traffic stamp, seconds since the store epoch
//	state  — slotEmpty / slotLive / slotTomb
type record struct {
	k1, k2 uint64
	ipIdx  uint16
	port   uint16
	idleAt uint32
	state  uint8
}

// recordBytes is the padded in-memory record size; the ≤32 B/session
// packing claim, asserted by TestRecordPacking.
const recordBytes = 32

// shard is one lock domain: an open-addressed slot table plus the port
// allocator for this shard's slice of the port space on every public IP.
type shard struct {
	mu    sync.Mutex
	slots []record
	// used counts live + tombstoned slots (the probe-chain load); live is
	// the session count, atomic so Sessions() and scrapes never take mu.
	used int
	live atomic.Int64

	// portLo is the first port this shard owns (on every IP); portOwner
	// maps (ipIdx × portsPerShard + port-portLo) → slot index + 1, serving
	// as both the allocator's in-use check and the reverse-lookup index.
	portLo    uint16
	portOwner []uint32
	// nextOff is the per-IP rotating allocation cursor; nextIP rotates the
	// starting IP so the pool fills evenly.
	nextOff []uint32
	nextIP  int

	reapCursor int

	j journal
}

// Store is the sharded session store.
type Store struct {
	cfg       Config
	shards    []shard
	shardMask uint64
	// portsPerShard is each shard's port-range width per public IP; the
	// reverse path recovers the shard as (port − snatPortMin) / width.
	portsPerShard int
	ipIndex       map[netip.Addr]uint16 // read-only after New
	epochUnix     int64
}

// New returns an empty store.
func New(cfg Config) *Store {
	cfg = cfg.withDefaults()
	st := &Store{
		cfg:           cfg,
		shards:        make([]shard, cfg.Shards),
		shardMask:     uint64(cfg.Shards - 1),
		portsPerShard: portSpace / cfg.Shards,
		ipIndex:       make(map[netip.Addr]uint16, len(cfg.PublicIPs)),
		epochUnix:     cfg.Epoch.Unix(),
	}
	for i, ip := range cfg.PublicIPs {
		st.ipIndex[ip.Unmap()] = uint16(i)
	}
	for i := range st.shards {
		s := &st.shards[i]
		s.portLo = uint16(snatPortMin + i*st.portsPerShard)
		s.portOwner = make([]uint32, len(cfg.PublicIPs)*st.portsPerShard)
		s.nextOff = make([]uint32, len(cfg.PublicIPs))
		s.j.init(cfg.JournalDepth)
	}
	return st
}

// Config returns the store's normalized configuration.
func (st *Store) Config() Config { return st.cfg }

// ShardCount returns the shard count.
func (st *Store) ShardCount() int { return len(st.shards) }

// stamp packs an instant into epoch-relative seconds.
func (st *Store) stamp(now time.Time) uint32 {
	s := now.Unix() - st.epochUnix
	if s < 0 {
		return 0
	}
	return uint32(s)
}

// packKey flattens a session key into two words; ok is false for non-IPv4.
func packKey(k tables.SNATKey) (k1, k2 uint64, ok bool) {
	src, dst := k.Flow.Src.Unmap(), k.Flow.Dst.Unmap()
	if !src.Is4() || !dst.Is4() {
		return 0, 0, false
	}
	s4, d4 := src.As4(), dst.As4()
	k1 = uint64(binary.BigEndian.Uint32(s4[:]))<<32 | uint64(binary.BigEndian.Uint32(d4[:]))
	k2 = uint64(k.VNI)<<40 | uint64(k.Flow.Proto)<<32 |
		uint64(k.Flow.SrcPort)<<16 | uint64(k.Flow.DstPort)
	return k1, k2, true
}

// unpackKey is the inverse of packKey; allocation-free.
func unpackKey(k1, k2 uint64) tables.SNATKey {
	var s4, d4 [4]byte
	binary.BigEndian.PutUint32(s4[:], uint32(k1>>32))
	binary.BigEndian.PutUint32(d4[:], uint32(k1))
	return tables.SNATKey{
		VNI: netpkt.VNI(k2 >> 40),
		Flow: netpkt.Flow{
			Src:     netip.AddrFrom4(s4),
			Dst:     netip.AddrFrom4(d4),
			Proto:   netpkt.IPProtocol(k2 >> 32),
			SrcPort: uint16(k2 >> 16),
			DstPort: uint16(k2),
		},
	}
}

// slotIndex mixes the packed key into a starting probe index.
func slotIndex(k1, k2 uint64, mask uint64) uint64 {
	h := k1*0x9E3779B97F4A7C15 ^ k2*0xC2B2AE3D27D4EB4F
	h ^= h >> 29
	return h & mask
}

// find returns the slot index holding (k1, k2), or -1.
func (s *shard) find(k1, k2 uint64) int {
	if len(s.slots) == 0 {
		return -1
	}
	mask := uint64(len(s.slots) - 1)
	for i := slotIndex(k1, k2, mask); ; i = (i + 1) & mask {
		r := &s.slots[i]
		if r.state == slotEmpty {
			return -1
		}
		if r.state == slotLive && r.k1 == k1 && r.k2 == k2 {
			return int(i)
		}
	}
}

// ownerOff returns a record's index into portOwner.
func (s *shard) ownerOff(st *Store, ipIdx, port uint16) int {
	return int(ipIdx)*st.portsPerShard + int(port-s.portLo)
}

// place inserts a record into the slot table (growing as needed) and points
// the port-owner index at it. The key must not already be present.
func (s *shard) place(st *Store, rec record) int {
	if len(s.slots) == 0 || (s.used+1)*4 > len(s.slots)*3 {
		s.rehash(st)
	}
	mask := uint64(len(s.slots) - 1)
	i := slotIndex(rec.k1, rec.k2, mask)
	for s.slots[i].state == slotLive {
		i = (i + 1) & mask
	}
	if s.slots[i].state == slotEmpty {
		s.used++
	}
	s.slots[i] = rec
	s.portOwner[s.ownerOff(st, rec.ipIdx, rec.port)] = uint32(i) + 1
	s.live.Add(1)
	return int(i)
}

// rehash rebuilds the slot table — doubled when genuinely full, same-sized
// when tombstones are the load — and repoints the port-owner index at the
// moved slots.
func (s *shard) rehash(st *Store) {
	newCap := 1024
	if len(s.slots) > 0 {
		live := int(s.live.Load())
		newCap = len(s.slots)
		if (live+1)*2 >= newCap {
			newCap *= 2
		}
	}
	old := s.slots
	s.slots = make([]record, newCap)
	s.used = 0
	mask := uint64(newCap - 1)
	for i := range old {
		r := &old[i]
		if r.state != slotLive {
			continue
		}
		j := slotIndex(r.k1, r.k2, mask)
		for s.slots[j].state == slotLive {
			j = (j + 1) & mask
		}
		s.slots[j] = *r
		s.portOwner[s.ownerOff(st, r.ipIdx, r.port)] = uint32(j) + 1
		s.used++
	}
}

// release tombstones a slot, frees its port and (optionally) journals the
// teardown. Callers hold s.mu.
func (s *shard) release(st *Store, slot int, journal bool) {
	r := &s.slots[slot]
	s.portOwner[s.ownerOff(st, r.ipIdx, r.port)] = 0
	if journal {
		s.j.append(Delta{Op: OpRelease, K1: r.k1, K2: r.k2, IPIdx: r.ipIdx, Port: r.port, Stamp: r.idleAt})
	}
	r.state = slotTomb
	s.live.Add(-1)
}

// allocate finds a free (public IP, port) pair inside the shard's port
// range, rotating over IPs and ports so the pool fills evenly. ok is false
// when the shard's slice of the port space is exhausted.
func (s *shard) allocate(st *Store) (ipIdx, port uint16, ok bool) {
	nIPs := len(s.nextOff)
	for n := 0; n < nIPs; n++ {
		ip := (s.nextIP + n) % nIPs
		base := ip * st.portsPerShard
		start := s.nextOff[ip]
		for tries := 0; tries < st.portsPerShard; tries++ {
			off := (start + uint32(tries)) % uint32(st.portsPerShard)
			if s.portOwner[base+int(off)] == 0 {
				s.nextOff[ip] = (off + 1) % uint32(st.portsPerShard)
				s.nextIP = (ip + 1) % nIPs
				return uint16(ip), s.portLo + uint16(off), true
			}
		}
	}
	return 0, 0, false
}

// shardFor picks the session's shard by the end-to-end flow hash — the same
// value the front end steers by, so a flow's forward packets always reach
// the same shard without coordination. FNV-1a's low bits are weak for
// structured five-tuples, so the hash goes through a 64-bit finalizer mix
// before masking; without it real traffic (one server, sequential client
// ports) piles whole port-spaces onto a few shards and exhausts them while
// others sit empty.
func (st *Store) shardFor(k tables.SNATKey) *shard {
	return &st.shards[st.shardIndex(k)]
}

// shardIndex returns the shard number a session key maps to.
func (st *Store) shardIndex(k tables.SNATKey) int {
	h := k.Flow.FastHash()
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return int(h & st.shardMask)
}

// Translate returns the session's binding, allocating one on first use and
// refreshing the idle stamp on every call (callers need no separate Touch on
// the outbound path). Allocation-free on the hit path.
func (st *Store) Translate(k tables.SNATKey, now time.Time) (tables.SNATBinding, error) {
	k1, k2, ok := packKey(k)
	if !ok {
		return tables.SNATBinding{}, ErrNotIPv4
	}
	stamp := st.stamp(now)
	s := st.shardFor(k)
	s.mu.Lock()
	if i := s.find(k1, k2); i >= 0 {
		r := &s.slots[i]
		if r.idleAt != stamp {
			r.idleAt = stamp
			s.j.append(Delta{Op: OpRefresh, K1: k1, K2: k2, IPIdx: r.ipIdx, Port: r.port, Stamp: stamp})
		}
		b := tables.SNATBinding{PublicIP: st.cfg.PublicIPs[r.ipIdx], PublicPort: r.port}
		s.mu.Unlock()
		return b, nil
	}
	ipIdx, port, ok := s.allocate(st)
	if !ok {
		s.mu.Unlock()
		return tables.SNATBinding{}, ErrExhausted
	}
	s.place(st, record{k1: k1, k2: k2, ipIdx: ipIdx, port: port, idleAt: stamp, state: slotLive})
	s.j.append(Delta{Op: OpCreate, K1: k1, K2: k2, IPIdx: ipIdx, Port: port, Stamp: stamp})
	b := tables.SNATBinding{PublicIP: st.cfg.PublicIPs[ipIdx], PublicPort: port}
	s.mu.Unlock()
	return b, nil
}

// Lookup returns the existing binding without allocating or refreshing.
func (st *Store) Lookup(k tables.SNATKey) (tables.SNATBinding, bool) {
	k1, k2, ok := packKey(k)
	if !ok {
		return tables.SNATBinding{}, false
	}
	s := st.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if i := s.find(k1, k2); i >= 0 {
		r := &s.slots[i]
		return tables.SNATBinding{PublicIP: st.cfg.PublicIPs[r.ipIdx], PublicPort: r.port}, true
	}
	return tables.SNATBinding{}, false
}

// ReverseLookup maps a response packet — arriving at public (ip, port) from
// peer (peerIP, peerPort) — back to the originating session key, refreshing
// the session's idle stamp. The destination port alone names the owning
// shard (the port space is partitioned across shards), so the reverse path
// needs no second hash table. Allocation-free.
func (st *Store) ReverseLookup(b tables.SNATBinding, peerIP netip.Addr, peerPort uint16, proto netpkt.IPProtocol, now time.Time) (tables.SNATKey, bool) {
	ipIdx, ok := st.ipIndex[b.PublicIP.Unmap()]
	if !ok || b.PublicPort < snatPortMin {
		return tables.SNATKey{}, false
	}
	off := int(b.PublicPort) - snatPortMin
	s := &st.shards[off/st.portsPerShard]
	s.mu.Lock()
	defer s.mu.Unlock()
	slot := s.portOwner[s.ownerOff(st, ipIdx, b.PublicPort)]
	if slot == 0 {
		return tables.SNATKey{}, false
	}
	r := &s.slots[slot-1]
	k := unpackKey(r.k1, r.k2)
	// The session's own peer must match the responder — a stray packet at
	// an allocated port from the wrong remote is not this session.
	if k.Flow.Dst != peerIP || k.Flow.DstPort != peerPort || k.Flow.Proto != proto {
		return tables.SNATKey{}, false
	}
	if stamp := st.stamp(now); r.idleAt != stamp {
		r.idleAt = stamp
		s.j.append(Delta{Op: OpRefresh, K1: r.k1, K2: r.k2, IPIdx: r.ipIdx, Port: r.port, Stamp: stamp})
	}
	return k, true
}

// Touch refreshes a session's idle stamp, if it exists.
func (st *Store) Touch(k tables.SNATKey, now time.Time) {
	k1, k2, ok := packKey(k)
	if !ok {
		return
	}
	stamp := st.stamp(now)
	s := st.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if i := s.find(k1, k2); i >= 0 {
		r := &s.slots[i]
		if r.idleAt != stamp {
			r.idleAt = stamp
			s.j.append(Delta{Op: OpRefresh, K1: k1, K2: k2, IPIdx: r.ipIdx, Port: r.port, Stamp: stamp})
		}
	}
}

// Release tears down a session, freeing its public port.
func (st *Store) Release(k tables.SNATKey) bool {
	k1, k2, ok := packKey(k)
	if !ok {
		return false
	}
	s := st.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.find(k1, k2)
	if i < 0 {
		return false
	}
	s.release(st, i, true)
	return true
}

// ttlStamps converts an idle ttl to whole stamp seconds, rounding up so a
// sub-second ttl still means "at least one stamp tick idle".
func ttlStamps(ttl time.Duration) uint32 {
	s := (ttl + time.Second - 1) / time.Second
	if s < 1 {
		s = 1
	}
	return uint32(s)
}

// ReapIdle releases sessions idle for at least ttl, scanning at most
// maxScan slots across the shards from each shard's persistent cursor, and
// returns the number released. This is the incremental replacement for a
// full-table sweep: a caller invoking it once per tick with a bounded
// budget amortizes aging over time and never stalls the data plane, while
// the cursor guarantees every slot is eventually visited.
func (st *Store) ReapIdle(now time.Time, ttl time.Duration, maxScan int) int {
	if maxScan <= 0 {
		return 0
	}
	nowStamp, need := st.stamp(now), ttlStamps(ttl)
	perShard := maxScan / len(st.shards)
	if perShard < 1 {
		perShard = 1
	}
	reaped := 0
	for i := range st.shards {
		reaped += st.shards[i].reap(st, nowStamp, need, perShard)
	}
	return reaped
}

// ExpireIdle releases every session idle for at least ttl — the legacy
// full-sweep semantics, equivalent to ReapIdle with an unbounded budget.
func (st *Store) ExpireIdle(now time.Time, ttl time.Duration) int {
	nowStamp, need := st.stamp(now), ttlStamps(ttl)
	reaped := 0
	for i := range st.shards {
		s := &st.shards[i]
		s.mu.Lock()
		reaped += s.reapLocked(st, nowStamp, need, len(s.slots), 0)
		s.mu.Unlock()
	}
	return reaped
}

// reap scans up to budget slots from the shard's cursor.
func (s *shard) reap(st *Store, nowStamp, need uint32, budget int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.slots) == 0 {
		return 0
	}
	if s.reapCursor >= len(s.slots) {
		s.reapCursor = 0
	}
	n := s.reapLocked(st, nowStamp, need, budget, s.reapCursor)
	s.reapCursor = (s.reapCursor + budget) % len(s.slots)
	return n
}

// reapLocked releases idle sessions in slots [from, from+budget) mod len.
func (s *shard) reapLocked(st *Store, nowStamp, need uint32, budget, from int) int {
	if len(s.slots) == 0 {
		return 0
	}
	if budget > len(s.slots) {
		budget = len(s.slots)
	}
	n := 0
	for i := 0; i < budget; i++ {
		slot := (from + i) % len(s.slots)
		r := &s.slots[slot]
		if r.state == slotLive && nowStamp >= r.idleAt && nowStamp-r.idleAt >= need {
			s.release(st, slot, true)
			n++
		}
	}
	return n
}

// Sessions returns the live session count from the per-shard atomic
// counters — exact and safe to read from any goroutine while traffic flows.
func (st *Store) Sessions() int {
	n := int64(0)
	for i := range st.shards {
		n += st.shards[i].live.Load()
	}
	return int(n)
}

// Len is Sessions, mirroring the legacy table's method set.
func (st *Store) Len() int { return st.Sessions() }

// MemoryBytes estimates the store's resident table footprint: slot records,
// the port-owner index, allocator cursors and journal rings.
func (st *Store) MemoryBytes() uint64 {
	var b uint64
	for i := range st.shards {
		s := &st.shards[i]
		s.mu.Lock()
		b += uint64(len(s.slots))*recordBytes +
			uint64(len(s.portOwner))*4 +
			uint64(len(s.nextOff))*4 +
			uint64(cap(s.j.ring))*deltaBytes
		s.mu.Unlock()
	}
	return b
}

// ShardStats is one shard's occupancy and journal position.
type ShardStats struct {
	Shard int
	// Live is the session count; Slots the allocated slot-table size;
	// PortCapacity the shard's allocatable (IP, port) pairs.
	Live         int
	Slots        int
	PortCapacity int
	// JournalFirst/JournalNext bound the retained delta window
	// [JournalFirst, JournalNext).
	JournalFirst, JournalNext uint64
}

// StatsShard snapshots one shard.
func (st *Store) StatsShard(i int) ShardStats {
	s := &st.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return ShardStats{
		Shard:        i,
		Live:         int(s.live.Load()),
		Slots:        len(s.slots),
		PortCapacity: len(s.portOwner),
		JournalFirst: s.j.first,
		JournalNext:  s.j.next,
	}
}

// rangeLive calls fn under the shard lock for every live record in shard i.
func (st *Store) rangeLive(i int, fn func(r *record)) {
	s := &st.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	for j := range s.slots {
		if s.slots[j].state == slotLive {
			fn(&s.slots[j])
		}
	}
}

// bindingOf returns shard i's binding for a packed key, for diffing a
// standby against its primary at promotion time.
func (st *Store) bindingOf(i int, k1, k2 uint64) (ipIdx, port uint16, ok bool) {
	s := &st.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	if j := s.find(k1, k2); j >= 0 {
		return s.slots[j].ipIdx, s.slots[j].port, true
	}
	return 0, 0, false
}
