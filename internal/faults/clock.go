package faults

import (
	"sync"
	"time"
)

// VirtualClock is a deterministic simulation clock: chaos scenarios advance
// it explicitly, so fault activation windows, heartbeat intervals, and
// retry backoffs replay identically under one seed. It is safe for
// concurrent use (the health-monitor loop reads it from another goroutine).
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock returns a clock frozen at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now returns the current virtual instant.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new instant.
func (c *VirtualClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}
