package faults

import (
	"net/netip"
	"sync"
	"time"

	"sailfish/internal/cluster"
	"sailfish/internal/netpkt"
	"sailfish/internal/tables"
	"sailfish/internal/telemetry"
	"sailfish/internal/trace"
	"sailfish/internal/xgwh"
)

// Gateway wraps a node's gateway behind the fault plan: every control- and
// data-plane call consults the active injections before (maybe) reaching
// the inner gateway. It implements cluster.Gateway.
//
// Unlike *xgwh.Gateway, the wrapper serializes access with a mutex: chaos
// scenarios deliberately run the health-monitor loop concurrently with
// traffic and table pushes, and the wrapper is the box boundary where that
// concurrency meets the single-threaded chip model.
type Gateway struct {
	mu    sync.Mutex
	inner cluster.Gateway
	node  string
	plan  *Plan

	// journal records entries applied through the wrapper, the pool
	// StaleTable reverts draw from.
	journalRoutes []journalRoute
	journalVMs    []journalVM
}

type journalRoute struct {
	vni netpkt.VNI
	p   netip.Prefix
}

type journalVM struct {
	vni netpkt.VNI
	vm  netip.Addr
}

// Inner returns the wrapped gateway (tests reach through to assert on the
// real tables).
func (g *Gateway) Inner() cluster.Gateway { return g.inner }

// crashed reports whether the node is currently unreachable.
func (g *Gateway) crashed() bool {
	_, on := g.plan.active(g.node, Crash)
	return on
}

// ProcessPacket injects crash (error) and hang (added latency) on the data
// path.
func (g *Gateway) ProcessPacket(raw []byte, now time.Time) (xgwh.ForwardResult, error) {
	if g.crashed() {
		g.plan.count(func(s *Stats) { s.CrashRejects++ })
		return xgwh.ForwardResult{}, ErrNodeDown
	}
	g.mu.Lock()
	res, err := g.inner.ProcessPacket(raw, now)
	g.mu.Unlock()
	if inj, on := g.plan.active(g.node, Hang); on {
		g.plan.count(func(s *Stats) { s.HangDelays++ })
		res.LatencyNs += inj.ExtraLatencyNs
	}
	return res, err
}

// InstallRoute injects crash, lost pushes (transient error), and partial
// applies (ack without effect).
func (g *Gateway) InstallRoute(vni netpkt.VNI, p netip.Prefix, r tables.Route) error {
	if g.crashed() {
		g.plan.count(func(s *Stats) { s.CrashRejects++ })
		return ErrNodeDown
	}
	if inj, on := g.plan.active(g.node, DropUpdate); on && g.plan.roll(inj.Prob) {
		g.plan.count(func(s *Stats) { s.DroppedPushes++ })
		return ErrPushLost
	}
	if inj, on := g.plan.active(g.node, PartialUpdate); on && g.plan.roll(inj.Prob) {
		g.plan.count(func(s *Stats) { s.PartialApplies++ })
		return nil // acked, never applied
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.inner.InstallRoute(vni, p, r); err != nil {
		return err
	}
	g.journalRoutes = append(g.journalRoutes, journalRoute{vni, p})
	return nil
}

// InstallVM injects crash and partial applies. The gateway VM API has no
// error return — a lost VM push is exactly the silent divergence the
// post-push read-back check exists to catch.
func (g *Gateway) InstallVM(vni netpkt.VNI, vm, nc netip.Addr) {
	if g.crashed() {
		g.plan.count(func(s *Stats) { s.CrashRejects++ })
		return
	}
	if inj, on := g.plan.active(g.node, PartialUpdate); on && g.plan.roll(inj.Prob) {
		g.plan.count(func(s *Stats) { s.PartialApplies++ })
		return
	}
	if inj, on := g.plan.active(g.node, DropUpdate); on && g.plan.roll(inj.Prob) {
		g.plan.count(func(s *Stats) { s.DroppedPushes++ })
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inner.InstallVM(vni, vm, nc)
	g.journalVMs = append(g.journalVMs, journalVM{vni, vm})
}

// revertOne silently removes one journaled entry from the inner gateway —
// the StaleTable divergence a reconcile sweep must find and repair.
func (g *Gateway) revertOne() {
	g.mu.Lock()
	defer g.mu.Unlock()
	total := len(g.journalRoutes) + len(g.journalVMs)
	if total == 0 {
		return
	}
	i := g.plan.pick(total)
	if i < len(g.journalRoutes) {
		e := g.journalRoutes[i]
		if g.inner.RemoveRoute(e.vni, e.p) {
			g.plan.count(func(s *Stats) { s.StaleReverts++ })
		}
	} else {
		e := g.journalVMs[i-len(g.journalRoutes)]
		if g.inner.RemoveVM(e.vni, e.vm) {
			g.plan.count(func(s *Stats) { s.StaleReverts++ })
		}
	}
}

// --- Reads: a crashed node cannot be read either ---

func (g *Gateway) GetRoute(vni netpkt.VNI, p netip.Prefix) (tables.Route, bool) {
	if g.crashed() {
		return tables.Route{}, false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.GetRoute(vni, p)
}

func (g *Gateway) LookupVM(vni netpkt.VNI, vm netip.Addr) (netip.Addr, bool) {
	if g.crashed() {
		return netip.Addr{}, false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.LookupVM(vni, vm)
}

func (g *Gateway) RouteCount() int {
	if g.crashed() {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.RouteCount()
}

func (g *Gateway) VMCount() int {
	if g.crashed() {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.VMCount()
}

func (g *Gateway) TenantGeneration(vni netpkt.VNI) uint64 {
	if g.crashed() {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.TenantGeneration(vni)
}

func (g *Gateway) SetTenantGeneration(vni netpkt.VNI, gen uint64) {
	if g.crashed() {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inner.SetTenantGeneration(vni, gen)
}

// --- Remaining control plane: crash-gated pass-throughs ---

func (g *Gateway) RemoveRoute(vni netpkt.VNI, p netip.Prefix) bool {
	if g.crashed() {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.RemoveRoute(vni, p)
}

func (g *Gateway) RemoveVM(vni netpkt.VNI, vm netip.Addr) bool {
	if g.crashed() {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.RemoveVM(vni, vm)
}

func (g *Gateway) MarkServiceVNI(vni netpkt.VNI) {
	if g.crashed() {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inner.MarkServiceVNI(vni)
}

func (g *Gateway) InstallACL(vni netpkt.VNI, r tables.ACLRule) {
	if g.crashed() {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inner.InstallACL(vni, r)
}

func (g *Gateway) InstallShape(vni netpkt.VNI, bytesPerSec, burstBytes float64) {
	if g.crashed() {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inner.InstallShape(vni, bytesPerSec, burstBytes)
}

func (g *Gateway) Stats() xgwh.Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.Stats()
}

func (g *Gateway) EnableTelemetry(deviceID string, m *telemetry.Matcher, c *telemetry.Collector) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inner.EnableTelemetry(deviceID, m, c)
}

func (g *Gateway) EnableTracing(rec *trace.Recorder, device string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inner.EnableTracing(rec, device)
}

func (g *Gateway) ALPMRouteStats() (xgwh.ALPMStats, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.ALPMRouteStats()
}
