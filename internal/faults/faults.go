// Package faults is the chaos-engineering harness for the Sailfish control
// loop: it injects the §6.1 failure classes — node crashes, hangs
// (slow/unresponsive boxes), port flaps, lost or partially-applied table
// pushes, and stale-table divergence — behind the cluster.Gateway
// interface, so the controller's detection, retry, and repair paths
// exercise real failure modes on the same code paths production takes.
// Everything is deterministic: a seeded RNG plus a virtual clock make every
// scenario replayable.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sailfish/internal/cluster"
)

// Errors surfaced by injected faults.
var (
	// ErrNodeDown reports a crashed (unreachable) node: both the data
	// plane and the control plane error out, as a dead box would.
	ErrNodeDown = errors.New("faults: node unreachable")
	// ErrPushLost reports a table push lost in transit — the transient
	// failure the controller's retry loop must absorb.
	ErrPushLost = errors.New("faults: table push lost")
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// Crash: the node stops responding entirely.
	Crash Kind = iota
	// Hang: the node responds, but pathologically slowly — the failure
	// heartbeat monitors must catch with a latency budget, not a timeout.
	Hang
	// PortFlap: one front-panel port oscillates down/up.
	PortFlap
	// DropUpdate: control-plane route pushes fail with a transient error.
	DropUpdate
	// PartialUpdate: pushes are accepted but silently not applied — the
	// divergence only a post-push consistency check can see.
	PartialUpdate
	// StaleTable: previously-applied entries silently revert over time
	// (the §6.1 "software/hardware bugs, misconfiguration" drift).
	StaleTable
)

// String names the fault class.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Hang:
		return "hang"
	case PortFlap:
		return "port_flap"
	case DropUpdate:
		return "drop_update"
	case PartialUpdate:
		return "partial_update"
	case StaleTable:
		return "stale_table"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Injection is one scheduled fault on one node.
type Injection struct {
	// Node is the target node ID (cluster.Node.ID).
	Node string
	Kind Kind
	// At is the virtual-time offset from the plan's start when the fault
	// activates.
	At time.Duration
	// For is the fault's duration; 0 means it never clears.
	For time.Duration
	// Port selects the flapping port (PortFlap only).
	Port int
	// FlapPeriod is the down/up toggle period (PortFlap; default 1s).
	FlapPeriod time.Duration
	// Prob is the per-operation injection probability for DropUpdate /
	// PartialUpdate / StaleTable (default 1).
	Prob float64
	// ExtraLatencyNs is the added per-packet latency under Hang
	// (default 50ms — far beyond any heartbeat budget).
	ExtraLatencyNs float64
}

// Stats counts injected fault effects, for asserting that a scenario
// actually exercised what it claims.
type Stats struct {
	CrashRejects   uint64 // operations refused by crashed nodes
	HangDelays     uint64 // packets slowed by hangs
	DroppedPushes  uint64 // route pushes errored in transit
	PartialApplies uint64 // pushes acked but not applied
	StaleReverts   uint64 // applied entries silently removed
	PortToggles    uint64 // port state flips
}

// Plan schedules injections against a region. Wrap the region's nodes with
// Apply, then drive virtual time with the clock and call Tick to fire
// time-based faults (flaps, stale reverts). Safe for concurrent use: the
// health-monitor goroutine consults it through the wrapped gateways while
// the scenario goroutine advances it.
type Plan struct {
	mu         sync.Mutex
	clock      *VirtualClock
	start      time.Time
	rng        *rand.Rand
	injections []Injection
	nodes      map[string]*cluster.Node
	flapState  map[int]bool // injection index → port currently failed
	stats      Stats
}

// NewPlan returns an empty plan over the given seed and clock.
func NewPlan(seed int64, clock *VirtualClock) *Plan {
	return &Plan{
		clock:     clock,
		start:     clock.Now(),
		rng:       rand.New(rand.NewSource(seed)),
		nodes:     make(map[string]*cluster.Node),
		flapState: make(map[int]bool),
	}
}

// Add schedules one injection, filling defaults.
func (p *Plan) Add(inj Injection) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if inj.Prob == 0 {
		inj.Prob = 1
	}
	if inj.FlapPeriod == 0 {
		inj.FlapPeriod = time.Second
	}
	if inj.ExtraLatencyNs == 0 {
		inj.ExtraLatencyNs = 50e6
	}
	p.injections = append(p.injections, inj)
}

// Apply wraps every node of the region (main and backup clusters) behind
// the injecting gateway, so all subsequent cluster/controller operations
// flow through the plan.
func (p *Plan) Apply(r *cluster.Region) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range r.Clusters {
		for _, n := range c.AllNodes() {
			if _, done := p.nodes[n.ID]; done {
				continue
			}
			p.nodes[n.ID] = n
			n.GW = &Gateway{inner: n.GW, node: n.ID, plan: p}
		}
	}
}

// Stats returns a snapshot of the injected-effect counters.
func (p *Plan) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// active returns the first live injection of the given kind on the node at
// the current virtual instant.
func (p *Plan) active(node string, k Kind) (Injection, bool) {
	now := p.clock.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.activeLocked(node, k, now)
}

func (p *Plan) activeLocked(node string, k Kind, now time.Time) (Injection, bool) {
	elapsed := now.Sub(p.start)
	for _, inj := range p.injections {
		if inj.Node != node || inj.Kind != k {
			continue
		}
		if elapsed < inj.At {
			continue
		}
		if inj.For > 0 && elapsed >= inj.At+inj.For {
			continue
		}
		return inj, true
	}
	return Injection{}, false
}

// roll draws a deterministic probability sample.
func (p *Plan) roll(prob float64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Float64() < prob
}

// pick draws a deterministic index in [0, n).
func (p *Plan) pick(n int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Intn(n)
}

func (p *Plan) count(f func(*Stats)) {
	p.mu.Lock()
	f(&p.stats)
	p.mu.Unlock()
}

// Tick fires the time-driven faults at the current virtual instant: port
// flaps toggle their port, and active StaleTable injections silently revert
// one journaled entry per tick on their node. Call it after each clock
// advance.
func (p *Plan) Tick() {
	now := p.clock.Now()
	p.mu.Lock()
	elapsed := now.Sub(p.start)
	type revert struct{ gw *Gateway }
	var reverts []revert
	for i, inj := range p.injections {
		live := elapsed >= inj.At && (inj.For == 0 || elapsed < inj.At+inj.For)
		switch inj.Kind {
		case PortFlap:
			n := p.nodes[inj.Node]
			if n == nil {
				continue
			}
			want := false
			if live {
				// Down on even half-periods, up on odd ones.
				phase := int64((elapsed - inj.At) / inj.FlapPeriod)
				want = phase%2 == 0
			}
			if p.flapState[i] != want {
				p.flapState[i] = want
				p.stats.PortToggles++
				if want {
					n.FailPort(inj.Port)
				} else {
					n.RestorePort(inj.Port)
				}
			}
		case StaleTable:
			if !live || p.rng.Float64() >= inj.Prob {
				continue
			}
			n := p.nodes[inj.Node]
			if n == nil {
				continue
			}
			if gw, ok := n.GW.(*Gateway); ok {
				reverts = append(reverts, revert{gw})
			}
		}
	}
	p.mu.Unlock()
	// Reverts touch the inner gateway; do it outside the plan lock (the
	// wrapper re-enters the plan for counting).
	for _, r := range reverts {
		r.gw.revertOne()
	}
}
