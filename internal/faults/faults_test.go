package faults

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"sailfish/internal/cluster"
	"sailfish/internal/netpkt"
	"sailfish/internal/tables"
)

func testRegion(t *testing.T) *cluster.Region {
	t.Helper()
	cfg := cluster.DefaultConfig()
	cfg.NodesPerCluster = 2
	return cluster.NewRegion(cfg, 1, 1)
}

func testPacket(t *testing.T, vni netpkt.VNI) []byte {
	t.Helper()
	spec := netpkt.BuildSpec{
		VNI:      vni,
		OuterSrc: netip.MustParseAddr("10.1.1.1"),
		OuterDst: netip.MustParseAddr("10.255.0.1"),
		InnerSrc: netip.MustParseAddr("10.10.0.2"),
		InnerDst: netip.MustParseAddr("10.10.0.3"),
		Proto:    netpkt.IPProtocolUDP,
		SrcPort:  20000, DstPort: 30001,
	}
	raw, err := spec.Build(netpkt.NewSerializeBuffer(128, 256))
	if err != nil {
		t.Fatal(err)
	}
	cp := make([]byte, len(raw))
	copy(cp, raw)
	return cp
}

func installTestTenant(t *testing.T, n *cluster.Node) {
	t.Helper()
	vni := netpkt.VNI(100)
	if err := n.GW.InstallRoute(vni, netip.MustParsePrefix("10.10.0.0/24"), tables.Route{Scope: tables.ScopeLocal}); err != nil {
		t.Fatal(err)
	}
	n.GW.InstallVM(vni, netip.MustParseAddr("10.10.0.3"), netip.MustParseAddr("172.16.0.3"))
}

// TestFaultWindows drives each fault class through its activation window and
// asserts the observable effect (table-driven across kinds).
func TestFaultWindows(t *testing.T) {
	vni := netpkt.VNI(100)
	prefix := netip.MustParsePrefix("10.10.0.0/24")
	route := tables.Route{Scope: tables.ScopeLocal}

	cases := []struct {
		name  string
		kind  Kind
		check func(t *testing.T, clock *VirtualClock, plan *Plan, n *cluster.Node, raw []byte)
	}{
		{"crash rejects data and control", Crash, func(t *testing.T, clock *VirtualClock, plan *Plan, n *cluster.Node, raw []byte) {
			if _, err := n.GW.ProcessPacket(raw, clock.Now()); !errors.Is(err, ErrNodeDown) {
				t.Fatalf("in-window ProcessPacket err = %v, want ErrNodeDown", err)
			}
			if err := n.GW.InstallRoute(vni, prefix, route); !errors.Is(err, ErrNodeDown) {
				t.Fatalf("in-window InstallRoute err = %v, want ErrNodeDown", err)
			}
			if _, ok := n.GW.GetRoute(vni, prefix); ok {
				t.Fatal("crashed node must not answer reads")
			}
			clock.Advance(2 * time.Second) // past the window
			if _, err := n.GW.ProcessPacket(raw, clock.Now()); err != nil {
				t.Fatalf("post-window ProcessPacket err = %v", err)
			}
		}},
		{"hang inflates latency", Hang, func(t *testing.T, clock *VirtualClock, plan *Plan, n *cluster.Node, raw []byte) {
			res, err := n.GW.ProcessPacket(raw, clock.Now())
			if err != nil {
				t.Fatal(err)
			}
			if res.LatencyNs < 50e6 {
				t.Fatalf("in-window latency %.0fns, want ≥ 50ms of injected delay", res.LatencyNs)
			}
			clock.Advance(2 * time.Second)
			res, err = n.GW.ProcessPacket(raw, clock.Now())
			if err != nil {
				t.Fatal(err)
			}
			if res.LatencyNs >= 50e6 {
				t.Fatalf("post-window latency %.0fns still inflated", res.LatencyNs)
			}
		}},
		{"drop_update loses pushes", DropUpdate, func(t *testing.T, clock *VirtualClock, plan *Plan, n *cluster.Node, raw []byte) {
			if err := n.GW.InstallRoute(vni, netip.MustParsePrefix("10.20.0.0/24"), route); !errors.Is(err, ErrPushLost) {
				t.Fatalf("in-window InstallRoute err = %v, want ErrPushLost", err)
			}
			clock.Advance(2 * time.Second)
			if err := n.GW.InstallRoute(vni, netip.MustParsePrefix("10.20.0.0/24"), route); err != nil {
				t.Fatalf("post-window InstallRoute err = %v", err)
			}
		}},
		{"partial_update acks without applying", PartialUpdate, func(t *testing.T, clock *VirtualClock, plan *Plan, n *cluster.Node, raw []byte) {
			p := netip.MustParsePrefix("10.30.0.0/24")
			if err := n.GW.InstallRoute(vni, p, route); err != nil {
				t.Fatalf("partial apply must ack: %v", err)
			}
			if _, ok := n.GW.GetRoute(vni, p); ok {
				t.Fatal("partially-applied push must not be readable — only read-back can catch it")
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := testRegion(t)
			clock := NewVirtualClock(time.Unix(0, 0))
			plan := NewPlan(1, clock)
			node := r.Clusters[0].Nodes[0]
			// The window opens after the tenant is installed at elapsed 0.
			plan.Add(Injection{Node: node.ID, Kind: tc.kind, At: 5 * time.Millisecond, For: time.Second})
			plan.Apply(r)
			installTestTenant(t, node)
			raw := testPacket(t, vni)
			clock.Advance(10 * time.Millisecond) // inside the window
			tc.check(t, clock, plan, node, raw)
		})
	}
}

// TestStaleTableReverts asserts that Tick silently removes journaled entries
// during a StaleTable window and that the stats count them.
func TestStaleTableReverts(t *testing.T) {
	r := testRegion(t)
	clock := NewVirtualClock(time.Unix(0, 0))
	plan := NewPlan(1, clock)
	node := r.Clusters[0].Nodes[0]
	plan.Add(Injection{Node: node.ID, Kind: StaleTable, At: 0, For: 10 * time.Second})
	plan.Apply(r)
	installTestTenant(t, node)

	before := node.GW.RouteCount() + node.GW.VMCount()
	for i := 0; i < 5; i++ {
		clock.Advance(100 * time.Millisecond)
		plan.Tick()
	}
	after := node.GW.RouteCount() + node.GW.VMCount()
	if after >= before {
		t.Fatalf("entries %d → %d, want silent reverts", before, after)
	}
	if plan.Stats().StaleReverts == 0 {
		t.Fatal("StaleReverts not counted")
	}
}

// TestPortFlapToggles asserts the flap oscillates the port with the
// configured period and restores it after the window.
func TestPortFlapToggles(t *testing.T) {
	r := testRegion(t)
	clock := NewVirtualClock(time.Unix(0, 0))
	plan := NewPlan(1, clock)
	node := r.Clusters[0].Nodes[0]
	plan.Add(Injection{Node: node.ID, Kind: PortFlap, At: 0, For: 4 * time.Second, Port: 3, FlapPeriod: time.Second})
	plan.Apply(r)

	clock.Advance(100 * time.Millisecond)
	plan.Tick()
	if node.PortHealthy[3] {
		t.Fatal("port should be down in the first half-period")
	}
	clock.Advance(time.Second)
	plan.Tick()
	if !node.PortHealthy[3] {
		t.Fatal("port should be up in the second half-period")
	}
	clock.Advance(5 * time.Second) // past the window
	plan.Tick()
	if !node.PortHealthy[3] {
		t.Fatal("port must be restored after the window")
	}
	if plan.Stats().PortToggles < 2 {
		t.Fatalf("PortToggles = %d, want ≥ 2", plan.Stats().PortToggles)
	}
}

// TestPlanDeterminism: identical seeds must produce identical effect counts.
func TestPlanDeterminism(t *testing.T) {
	run := func() Stats {
		r := testRegion(t)
		clock := NewVirtualClock(time.Unix(0, 0))
		plan := NewPlan(42, clock)
		node := r.Clusters[0].Nodes[0]
		plan.Add(Injection{Node: node.ID, Kind: DropUpdate, At: 0, For: time.Second, Prob: 0.5})
		plan.Apply(r)
		for i := 0; i < 50; i++ {
			//nolint:errcheck // outcome recorded in plan stats
			node.GW.InstallRoute(netpkt.VNI(100), netip.MustParsePrefix("10.10.0.0/24"), tables.Route{Scope: tables.ScopeLocal})
		}
		return plan.Stats()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

// TestApplyWrapsAllReplicas: every main and backup node must be wrapped, and
// the wrapper must expose the original gateway via Inner.
func TestApplyWrapsAllReplicas(t *testing.T) {
	r := testRegion(t)
	clock := NewVirtualClock(time.Unix(0, 0))
	plan := NewPlan(1, clock)
	plan.Apply(r)
	for _, n := range r.Clusters[0].AllNodes() {
		gw, ok := n.GW.(*Gateway)
		if !ok {
			t.Fatalf("node %s not wrapped", n.ID)
		}
		if gw.Inner() == nil {
			t.Fatalf("node %s wrapper has no inner gateway", n.ID)
		}
	}
	// Applying twice must not double-wrap.
	plan.Apply(r)
	for _, n := range r.Clusters[0].AllNodes() {
		if gw, ok := n.GW.(*Gateway); !ok {
			t.Fatalf("node %s lost its wrapper", n.ID)
		} else if _, double := gw.Inner().(*Gateway); double {
			t.Fatalf("node %s double-wrapped", n.ID)
		}
	}
}
