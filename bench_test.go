// Benchmarks that regenerate every table and figure of the paper's
// evaluation, one per experiment (go test -bench=. -benchmem). Each
// iteration performs a complete regeneration, so the reported ns/op is the
// cost of reproducing that artifact from scratch; simulation-backed figures
// run with a reduced window (the same code path as the full run in
// cmd/sailfish-bench).
package sailfish

import (
	"testing"

	"sailfish/internal/experiments"
)

// benchScale shrinks simulated multi-day windows so each benchmark
// iteration stays subsecond; memory/layout experiments ignore it.
const benchScale = 0.25

func benchmarkExperiment(b *testing.B, id string) {
	run, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep := run(benchScale)
		if len(rep.Text) == 0 {
			b.Fatal("empty report")
		}
	}
}

// Table 2: baseline occupancy of the two major tables (no optimizations).
func BenchmarkTable2(b *testing.B) { benchmarkExperiment(b, "table2") }

// Table 3: major-table occupancy after all §4.4 optimizations.
func BenchmarkTable3(b *testing.B) { benchmarkExperiment(b, "table3") }

// Table 4: full-program occupancy per pipeline class.
func BenchmarkTable4(b *testing.B) { benchmarkExperiment(b, "table4") }

// Fig 4: CPU overload in an XGW-x86 (top-5 cores).
func BenchmarkFig4(b *testing.B) { benchmarkExperiment(b, "fig4") }

// Fig 5: legacy region traffic and packet loss.
func BenchmarkFig5(b *testing.B) { benchmarkExperiment(b, "fig5") }

// Fig 6: balanced CPU consumption across gateways.
func BenchmarkFig6(b *testing.B) { benchmarkExperiment(b, "fig6") }

// Fig 7: heavy hitters dominating overloaded cores.
func BenchmarkFig7(b *testing.B) { benchmarkExperiment(b, "fig7") }

// Fig 8: CPU performance vs ToR port speed, 2010-2020.
func BenchmarkFig8(b *testing.B) { benchmarkExperiment(b, "fig8") }

// Fig 17: step-by-step table compression.
func BenchmarkFig17(b *testing.B) { benchmarkExperiment(b, "fig17") }

// Fig 18: XGW-H vs XGW-x86 forwarding performance.
func BenchmarkFig18(b *testing.B) { benchmarkExperiment(b, "fig18") }

// Fig 19: Sailfish loss in three regions during the festival week.
func BenchmarkFig19(b *testing.B) { benchmarkExperiment(b, "fig19") }

// Fig 20: traffic split between pipes, per cluster.
func BenchmarkFig20(b *testing.B) { benchmarkExperiment(b, "fig20") }

// Fig 21: traffic split between pipes, over time.
func BenchmarkFig21(b *testing.B) { benchmarkExperiment(b, "fig21") }

// Fig 22: the <0.2‰ sliver carried by XGW-x86.
func BenchmarkFig22(b *testing.B) { benchmarkExperiment(b, "fig22") }

// Fig 23: VXLAN routing table update frequencies.
func BenchmarkFig23(b *testing.B) { benchmarkExperiment(b, "fig23") }

// §8 future work: N+1 hierarchical cache clusters.
func BenchmarkNPlus1(b *testing.B) { benchmarkExperiment(b, "nplus1") }

// Ablation: ALPM bucket-capacity sweep (§4.4 TCAM/SRAM trade-off).
func BenchmarkAblationALPM(b *testing.B) { benchmarkExperiment(b, "ablation-alpm") }

// Ablation: horizontal vs vertical table splitting (§4.3).
func BenchmarkAblationSplit(b *testing.B) { benchmarkExperiment(b, "ablation-split") }

// Ablation: pre-allocated tables vs TEA-style cache (§6.2).
func BenchmarkAblationCache(b *testing.B) { benchmarkExperiment(b, "ablation-cache") }

// Ablation: bridged-metadata throughput tax (§4.4).
func BenchmarkAblationBridge(b *testing.B) { benchmarkExperiment(b, "ablation-bridge") }

// BenchmarkRegionForward measures the behavioral fast path end to end:
// steering → ECMP → folded XGW-H program → rewrite.
func BenchmarkRegionForward(b *testing.B) {
	d := NewDeployment(Options{Clusters: 1, NodesPerCluster: 2, FallbackNodes: 0})
	vm1 := mustAddr("192.168.10.2")
	vm2 := mustAddr("192.168.10.3")
	if _, err := d.AddTenant(Tenant{
		VNI:    100,
		Prefix: mustPrefix("192.168.10.0/24"),
		VMs: map[netipAddr]netipAddr{
			vm1: mustAddr("10.1.1.11"),
			vm2: mustAddr("10.1.1.12"),
		},
	}); err != nil {
		b.Fatal(err)
	}
	raw, err := BuildVXLAN(100, vm1, vm2, ProtoTCP, 4242, 80, make([]byte, 64))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := d.DeliverVXLANAt(raw, benchTime)
		if err != nil {
			b.Fatal(err)
		}
		if res.GW.Action != ActionForward {
			b.Fatal("not forwarded")
		}
	}
}

// BenchmarkRegionForwardBatch measures the same fast path through the
// batched entry point: one ProcessBatch call per 64 packets, with the
// result slice recycled across calls.
func BenchmarkRegionForwardBatch(b *testing.B) {
	d := NewDeployment(Options{Clusters: 1, NodesPerCluster: 2, FallbackNodes: 0})
	vm1 := mustAddr("192.168.10.2")
	vm2 := mustAddr("192.168.10.3")
	if _, err := d.AddTenant(Tenant{
		VNI:    100,
		Prefix: mustPrefix("192.168.10.0/24"),
		VMs: map[netipAddr]netipAddr{
			vm1: mustAddr("10.1.1.11"),
			vm2: mustAddr("10.1.1.12"),
		},
	}); err != nil {
		b.Fatal(err)
	}
	const batch = 64
	raws := make([][]byte, batch)
	var rawLen int
	for i := range raws {
		raw, err := BuildVXLAN(100, vm1, vm2, ProtoTCP, uint16(4242+i), 80, make([]byte, 64))
		if err != nil {
			b.Fatal(err)
		}
		raws[i] = append([]byte(nil), raw...)
		rawLen = len(raw)
	}
	out := make([]BatchResult, 0, batch)
	b.SetBytes(int64(rawLen * batch))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = d.Region.ProcessBatch(raws, benchTime, out[:0])
		for j := range out {
			if out[j].Err != nil {
				b.Fatal(out[j].Err)
			}
			if out[j].Result.GW.Action != ActionForward {
				b.Fatal("not forwarded")
			}
		}
	}
}

// Ablation: latency under load (§2.3 stability argument).
func BenchmarkAblationLatency(b *testing.B) { benchmarkExperiment(b, "ablation-latency") }

// Ablation: v4/v6 mix invariance under table pooling (§4.4 claim).
func BenchmarkAblationPoolMix(b *testing.B) { benchmarkExperiment(b, "ablation-poolmix") }

// §2.3/§4.2 cost arithmetic (hundreds of x86 boxes → tens of XGW-H).
func BenchmarkCost(b *testing.B) { benchmarkExperiment(b, "cost") }
