module sailfish

go 1.22
