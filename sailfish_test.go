package sailfish

import (
	"net/netip"
	"testing"
	"time"

	"sailfish/internal/netpkt"
	"sailfish/internal/xgwh"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestDeploymentEndToEnd(t *testing.T) {
	d := NewDeployment(Options{Clusters: 2, NodesPerCluster: 2, FallbackNodes: 1})

	// Two tenants, peered as in Fig. 2.
	if _, err := d.AddTenant(Tenant{
		VNI:    100,
		Prefix: netip.MustParsePrefix("192.168.10.0/24"),
		VMs:    map[netip.Addr]netip.Addr{addr("192.168.10.2"): addr("10.1.1.11"), addr("192.168.10.3"): addr("10.1.1.12")},
		Peers:  []Peering{{Prefix: netip.MustParsePrefix("192.168.30.0/24"), PeerVNI: 200}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddTenant(Tenant{
		VNI:    200,
		Prefix: netip.MustParsePrefix("192.168.30.0/24"),
		VMs:    map[netip.Addr]netip.Addr{addr("192.168.30.5"): addr("10.1.1.15")},
	}); err != nil {
		t.Fatal(err)
	}

	// Same-VPC delivery.
	raw, err := BuildVXLAN(100, addr("192.168.10.2"), addr("192.168.10.3"), ProtoTCP, 1234, 80, []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.DeliverVXLANAt(raw, time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.GW.Action != ActionForward || res.GW.NC != addr("10.1.1.12") {
		t.Fatalf("same-VPC: %+v", res.GW)
	}

	// Cross-VPC through peering: VNI 100 and 200 may live on different
	// clusters; the packet enters via tenant 100's cluster, which holds
	// 100's peer route but not 200's tables. Production handles this by
	// placing peered tenants together or re-steering; here both peer
	// routes resolve because AddTenant installs the peer chain in the
	// tenant's own cluster... verify the fallback-or-forward outcome is
	// sane rather than a silent drop.
	raw, _ = BuildVXLAN(100, addr("192.168.10.2"), addr("192.168.30.5"), ProtoTCP, 1234, 80, nil)
	res, err = d.DeliverVXLANAt(raw, time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.GW.Action == ActionDrop {
		t.Fatalf("cross-VPC packet dropped: %+v", res.GW)
	}

	st := d.Stats()
	if st.Clusters != 2 || st.Region.Forwarded == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeploymentSNATTenant(t *testing.T) {
	d := NewDeployment(Options{Clusters: 1, NodesPerCluster: 1, FallbackNodes: 1})
	if _, err := d.AddTenant(Tenant{
		VNI:       300,
		Prefix:    netip.MustParsePrefix("172.16.0.0/24"),
		VMs:       map[netip.Addr]netip.Addr{addr("172.16.0.5"): addr("10.1.1.20")},
		NeedsSNAT: true,
	}); err != nil {
		t.Fatal(err)
	}
	// Internet-bound packet: must take the fallback (SNAT) path.
	raw, _ := BuildVXLAN(300, addr("172.16.0.5"), addr("93.184.216.34"), ProtoTCP, 5000, 443, nil)
	res, err := d.DeliverVXLANAt(raw, time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.GW.Action != ActionFallback {
		t.Fatalf("SNAT tenant not steered to software: %+v", res.GW)
	}
}

func TestDeploymentAutoExpand(t *testing.T) {
	d := NewDeployment(Options{Clusters: 1, NodesPerCluster: 1, FallbackNodes: 0,
		EntryCapacity: 4, SafeWaterLevel: 0.5})
	mk := func(vni VNI, ip string) Tenant {
		return Tenant{
			VNI:    vni,
			Prefix: netip.MustParsePrefix("10.0.0.0/24"),
			VMs:    map[netip.Addr]netip.Addr{addr(ip): addr("10.1.1.1")},
		}
	}
	if _, err := d.AddTenant(mk(1, "10.0.0.1")); err != nil {
		t.Fatal(err)
	}
	id, err := d.AddTenant(mk(2, "10.0.0.2"))
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 || d.Stats().Clusters != 2 {
		t.Fatalf("expected auto-expansion, got cluster %d of %d", id, d.Stats().Clusters)
	}
}

func TestBuildVXLANParsesBack(t *testing.T) {
	raw, err := BuildVXLAN(7, addr("192.168.0.1"), addr("192.168.0.2"), ProtoUDP, 53, 53, []byte("q"))
	if err != nil {
		t.Fatal(err)
	}
	var p netpkt.Parser
	var pkt netpkt.GatewayPacket
	if err := p.Parse(raw, &pkt); err != nil {
		t.Fatal(err)
	}
	if pkt.VXLAN.VNI != 7 || pkt.InnerDst() != addr("192.168.0.2") {
		t.Fatalf("pkt = %v %v", pkt.VXLAN.VNI, pkt.InnerDst())
	}
}

func TestDeploymentDisasterRecovery(t *testing.T) {
	d := NewDeployment(Options{Clusters: 1, NodesPerCluster: 2, FallbackNodes: 0})
	if _, err := d.AddTenant(Tenant{
		VNI:    100,
		Prefix: netip.MustParsePrefix("192.168.0.0/24"),
		VMs:    map[netip.Addr]netip.Addr{addr("192.168.0.5"): addr("10.1.1.5")},
	}); err != nil {
		t.Fatal(err)
	}
	raw, _ := BuildVXLAN(100, addr("192.168.0.1"), addr("192.168.0.5"), ProtoUDP, 1, 2, nil)

	// Kill the whole main cluster and fail over: the backup serves.
	for i := range d.Region.Clusters[0].Nodes {
		d.Controller.HandleNodeAnomaly(0, i)
	}
	d.Controller.HandleClusterAnomaly(0)
	res, err := d.DeliverVXLANAt(raw, time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.GW.Action != xgwh.ActionForward {
		t.Fatalf("backup cluster did not serve: %+v", res.GW)
	}
}

func TestCommissionWorkflowViaFacade(t *testing.T) {
	d := NewDeployment(Options{Clusters: 1, NodesPerCluster: 2, FallbackNodes: 0})
	d.Region.SetClusterEnabled(0, false)
	tn := Tenant{
		VNI:    100,
		Prefix: mustPrefix("192.168.10.0/24"),
		VMs:    map[netipAddr]netipAddr{mustAddr("192.168.10.2"): mustAddr("10.1.1.11")},
	}
	if _, err := d.AddTenant(tn); err != nil {
		t.Fatal(err)
	}
	raw, _ := BuildVXLAN(100, mustAddr("192.168.10.3"), mustAddr("192.168.10.2"), ProtoUDP, 1, 2, nil)
	if _, err := d.DeliverVXLANAt(raw, benchTime); err == nil {
		t.Fatal("staged cluster served traffic")
	}
	spec := ProbeSpecFor(tn)
	spec.LocalSrc = mustAddr("192.168.10.3")
	rep, err := d.Commission(0, spec)
	if err != nil {
		t.Fatalf("%v (%+v)", err, rep.ProbeFailures)
	}
	if !rep.Admitted {
		t.Fatal("not admitted")
	}
	res, err := d.DeliverVXLANAt(raw, benchTime)
	if err != nil || res.GW.Action != ActionForward {
		t.Fatalf("post-commission delivery: %+v %v", res.GW, err)
	}
}
