// Quickstart: build a one-cluster Sailfish region, install a tenant, and
// forward a VM-to-VM packet through the hardware gateway.
package main

import (
	"fmt"
	"log"
	"net/netip"

	"sailfish"
)

func main() {
	// One XGW-H cluster (with its hot-standby backup) and one XGW-x86
	// fallback node.
	d := sailfish.NewDeployment(sailfish.Options{Clusters: 1, FallbackNodes: 1})

	// Tenant 100: VPC 192.168.10.0/24 with two VMs on two physical
	// servers (NCs).
	vm1 := netip.MustParseAddr("192.168.10.2")
	vm2 := netip.MustParseAddr("192.168.10.3")
	if _, err := d.AddTenant(sailfish.Tenant{
		VNI:    100,
		Prefix: netip.MustParsePrefix("192.168.10.0/24"),
		VMs: map[netip.Addr]netip.Addr{
			vm1: netip.MustParseAddr("10.1.1.11"),
			vm2: netip.MustParseAddr("10.1.1.12"),
		},
	}); err != nil {
		log.Fatal(err)
	}

	// vm1 sends a TCP segment to vm2 through the gateway.
	raw, err := sailfish.BuildVXLAN(100, vm1, vm2, sailfish.ProtoTCP, 4242, 80, []byte("hello sailfish"))
	if err != nil {
		log.Fatal(err)
	}
	res, err := d.DeliverVXLAN(raw)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("action:   %v\n", res.GW.Action)
	fmt.Printf("cluster:  %d, node %s\n", res.ClusterID, res.NodeID)
	fmt.Printf("next hop: NC %v (hosting %v)\n", res.GW.NC, vm2)
	fmt.Printf("latency:  %.2f µs over %d pipeline passes (folded)\n",
		res.GW.LatencyNs/1000, res.GW.Passes)
	fmt.Printf("rewritten packet: %d bytes on the wire\n", len(res.GW.Out))
}
