// Multitenant walks the traffic routes of the paper's Table 1 through one
// region: same-VPC forwarding, cross-VPC peering (the Fig. 2 walkthrough),
// cross-region tunneling, tenant isolation, and an ACL deny.
package main

import (
	"fmt"
	"log"
	"net/netip"

	"sailfish"
	"sailfish/internal/netpkt"
	"sailfish/internal/tables"
)

func addr(s string) netip.Addr     { return netip.MustParseAddr(s) }
func prefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func main() {
	d := sailfish.NewDeployment(sailfish.Options{Clusters: 1, NodesPerCluster: 2, FallbackNodes: 1})

	// VPC A (VNI 100) and VPC B (VNI 200), peered exactly as in Fig. 2.
	if _, err := d.AddTenant(sailfish.Tenant{
		VNI:    100,
		Prefix: prefix("192.168.10.0/24"),
		VMs: map[netip.Addr]netip.Addr{
			addr("192.168.10.2"): addr("10.1.1.11"),
			addr("192.168.10.3"): addr("10.1.1.12"),
		},
		Peers: []sailfish.Peering{{Prefix: prefix("192.168.30.0/24"), PeerVNI: 200}},
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := d.AddTenant(sailfish.Tenant{
		VNI:    200,
		Prefix: prefix("192.168.30.0/24"),
		VMs:    map[netip.Addr]netip.Addr{addr("192.168.30.5"): addr("10.1.1.15")},
	}); err != nil {
		log.Fatal(err)
	}
	// VPC A can also reach a remote region through a tunnel endpoint.
	gw := d.Region.Clusters[0]
	for _, n := range append(gw.Nodes, gw.Backup.Nodes...) {
		n.GW.InstallRoute(100, prefix("172.31.0.0/16"),
			tables.Route{Scope: tables.ScopeRemote, Tunnel: addr("100.64.200.1")})
	}

	send := func(what string, vni sailfish.VNI, src, dst string, port uint16) {
		raw, err := sailfish.BuildVXLAN(vni, addr(src), addr(dst), sailfish.ProtoTCP, 9999, port, nil)
		if err != nil {
			log.Fatal(err)
		}
		res, err := d.DeliverVXLAN(raw)
		if err != nil {
			fmt.Printf("%-34s -> error: %v\n", what, err)
			return
		}
		switch res.GW.Action {
		case sailfish.ActionForward:
			// Parse the rewritten packet to show the delivered VNI.
			var p netpkt.Parser
			var pkt netpkt.GatewayPacket
			if err := p.Parse(res.GW.Out, &pkt); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-34s -> forward to %v, delivered %v\n", what, res.GW.NC, pkt.VXLAN.VNI)
		case sailfish.ActionFallback:
			fmt.Printf("%-34s -> software path (XGW-x86)\n", what)
		default:
			fmt.Printf("%-34s -> DROP (%s)\n", what, res.GW.DropReason)
		}
	}

	fmt.Println("== Table 1 traffic routes ==")
	send("VM-VM same VPC", 100, "192.168.10.2", "192.168.10.3", 80)
	send("VM-VM different VPCs (peering)", 100, "192.168.10.2", "192.168.30.5", 80)
	send("VM-Cross-region (CEN tunnel)", 100, "192.168.10.2", "172.31.9.9", 80)

	fmt.Println("\n== Isolation ==")
	// VPC B never imported A's prefix: B cannot reach A's VMs. The route
	// misses in hardware and the software path (holding the full region
	// state) rejects it too.
	send("VPC B -> VPC A (no peering route)", 200, "192.168.30.5", "192.168.10.2", 80)

	fmt.Println("\n== ACL (per-SLA service table) ==")
	for _, n := range append(gw.Nodes, gw.Backup.Nodes...) {
		n.GW.InstallACL(100, tables.ACLRule{
			Proto: netpkt.IPProtocolTCP, DstPortLo: 23, DstPortHi: 23,
			Action: tables.ACLDeny, Priority: 10,
		})
	}
	send("VM-VM same VPC, telnet (denied)", 100, "192.168.10.2", "192.168.10.3", 23)
	send("VM-VM same VPC, http (allowed)", 100, "192.168.10.2", "192.168.10.3", 80)

	st := d.Stats()
	fmt.Printf("\nregion stats: forwarded=%d fallback=%d dropped=%d\n",
		st.Region.Forwarded, st.Region.Fallback, st.Region.Dropped)
}
