// Festival replays the paper's core narrative over one simulated shopping
// festival: the same traffic shape through the legacy XGW-x86 region
// (heavy hitters pin CPU cores, packets drop) and through a Sailfish region
// (six orders of magnitude less loss from the Tofino's capacity headroom).
package main

import (
	"fmt"

	"sailfish/internal/sim"
)

func main() {
	fmt.Println("simulating an 8-day window with a 2.5-day shopping festival...")

	legacy := sim.RunLegacy(sim.DefaultLegacyConfig())
	sail := sim.RunSailfish(sim.DefaultSailfishConfig())

	fmt.Println("\n== legacy XGW-x86 region (15 nodes × 32 cores) ==")
	top := legacy.TopCores(3)
	fmt.Printf("hottest gateway: #%d; hottest core peaked at %.0f%% util\n",
		legacy.HotGateway, 100*legacy.HotGatewayCores[top[0]].Max())
	fmt.Printf("node-level view stays calm: gateway mean utils all ≈%.0f%%\n",
		100*legacy.GatewayMeanUtil[0].Mean())
	fmt.Printf("region loss over the window: %s\n", legacy.TotalLoss.String())
	if len(legacy.Scenes) > 0 {
		s := legacy.Scenes[0]
		fmt.Printf("first overload scene (day %.1f): top-1 flow carried %.0f%% of the hot core's traffic\n",
			s.Day, 100*s.Top1Share)
	}

	fmt.Println("\n== Sailfish region (3 XGW-H clusters, folded pipelines) ==")
	fmt.Printf("peak traffic: %.1f Tbps of %.1f Tbps capacity\n",
		sail.RegionGbps.Max()/1000, sim.DefaultSailfishConfig().CapacityGbps()/1000)
	fmt.Printf("region loss over the window: %s\n", sail.TotalLoss.String())
	fmt.Printf("pipe balance: worst egress-pipe imbalance %.1f%%\n", 100*sail.PipeImbalance())
	fmt.Printf("software path carried %.3f‰ of traffic, hottest x86 core %.0f%%\n",
		1000*sail.FallbackRatio.Max(), 100*sail.FallbackMaxCoreUtil.Max())

	improvement := legacy.TotalLoss.Rate() / sail.TotalLoss.Rate()
	fmt.Printf("\nloss improvement: %.1e× (paper: six orders of magnitude)\n", improvement)
}
