// Placement: the §5 95/5 loop end to end. Four tenants are placed in
// residency mode (full state in the XGW-x86 pool, nothing in hardware),
// Zipf-distributed traffic feeds the heavy-hitter tracker, and the
// placement loop promotes the hot (VNI, DIP) keys into XGW-H under a churn
// budget — then the hot set shifts and the loop demotes the cooled head.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net/netip"
	"time"

	"sailfish"

	"sailfish/internal/heavyhitter"
	"sailfish/internal/netpkt"
	"sailfish/internal/placement"
)

const (
	tenants     = 4
	vmsPer      = 100
	keys        = tenants * vmsPer
	windowPkts  = 50_000
	churnBudget = 48
)

func main() {
	d := sailfish.NewDeployment(sailfish.Options{Clusters: 1, FallbackNodes: 1})

	// Residency-mode tenants: the controller mirrors the full state to the
	// XGW-x86 pool and leaves hardware empty.
	dip := func(key int) netip.Addr {
		return netip.AddrFrom4([4]byte{10, byte(key / vmsPer), byte(key % vmsPer), 2})
	}
	for ti := 0; ti < tenants; ti++ {
		t := sailfish.Tenant{
			VNI:    sailfish.VNI(100 + ti),
			Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(ti), 0, 0}), 16),
			VMs:    map[netip.Addr]netip.Addr{},
		}
		for vi := 0; vi < vmsPer; vi++ {
			key := ti*vmsPer + vi
			t.VMs[dip(key)] = netip.AddrFrom4([4]byte{100, 64, byte(ti), byte(vi)})
		}
		if _, err := d.AddTenantSoftware(t); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("placed %d tenants software-first: %d desired entries, %d in hardware\n",
		tenants, d.Controller.DesiredEntries(), d.Controller.ResidentEntryCount())

	// The telemetry feed and the loop over the real controller.
	hh := heavyhitter.NewTracker(1024)
	d.Region.EnableHeavyHitters(hh)
	loop := placement.New(placement.Config{
		CoverageTarget: 1,
		PromoteShare:   0.0002, // ≥10 pkts per 50k window
		ChurnBudget:    churnBudget,
		WindowReset:    true,
	}, d.Controller, hh)

	// Prebuilt packets, one per key; traffic is Zipf over the key space.
	pkts := make([][]byte, keys)
	for k := 0; k < keys; k++ {
		raw, err := sailfish.BuildVXLAN(sailfish.VNI(100+k/vmsPer),
			netip.AddrFrom4([4]byte{10, byte(k / vmsPer), 200, 9}), dip(k),
			netpkt.IPProtocolTCP, 999, 80, []byte("pkt"))
		if err != nil {
			log.Fatal(err)
		}
		pkts[k] = raw
	}
	zipf := rand.NewZipf(rand.New(rand.NewSource(42)), 2.2, 1, keys-1)
	drive := func(mapKey func(int) int) {
		for i := 0; i < windowPkts; i++ {
			if _, err := d.DeliverVXLANAt(pkts[mapKey(int(zipf.Uint64()))], time.Unix(0, 0)); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Println("\nwarm-up: Zipf traffic, one placement cycle per window")
	identity := func(r int) int { return r }
	for c := 0; c < 4; c++ {
		drive(identity)
		rep := loop.RunCycle()
		fmt.Printf("  cycle %d: +%d promoted, -%d demoted (deferred churn %d), resident %d/%d entries, ~%.2f%% of traffic\n",
			rep.Cycle, rep.Promoted, rep.Demoted, rep.DeferredChurn,
			rep.ResidentEntries, rep.DesiredEntries, 100*rep.HardwareShare)
	}

	// Steady state: resident set frozen, measure who serves the packets.
	d.Region.ResetStats()
	drive(identity)
	st := d.Region.Stats()
	fmt.Printf("\nsteady state: %d/%d entries resident (%.1f%%), hardware served %.3f%% of packets\n",
		d.Controller.ResidentEntryCount(), d.Controller.DesiredEntries(),
		100*float64(d.Controller.ResidentEntryCount())/float64(d.Controller.DesiredEntries()),
		100*d.Region.HardwareCoverage())
	fmt.Printf("  forwarded in hardware: %d, completed by XGW-x86 pool: %d (all residency misses: %v)\n",
		st.Forwarded, st.Fallback, st.FallbackMiss == st.Fallback)

	// The hot set moves: the loop demotes the cooled head under the same
	// churn budget while promoting the new one.
	fmt.Println("\nhot set shifts by half the key space")
	shifted := func(r int) int { return (r + keys/2) % keys }
	loop.RunCycle() // close out the measured window
	for c := 0; c < 4; c++ {
		drive(shifted)
		rep := loop.RunCycle()
		fmt.Printf("  cycle %d: +%d promoted, -%d demoted, resident %d/%d entries\n",
			rep.Cycle, rep.Promoted, rep.Demoted, rep.ResidentEntries, rep.DesiredEntries)
	}
	tot := loop.Snapshot().Totals
	fmt.Printf("\nlifetime: %d cycles, %d promotions, %d demotions, %d deferred by the churn budget\n",
		tot.Cycles, tot.Promotions, tot.Demotions, tot.DeferredChurn)
}
