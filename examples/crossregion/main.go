// Crossregion completes Table 1's route list across two full Sailfish
// regions: a VM in region A (China) reaches a VM in region B (USA) through
// the CEN — region A's gateway tunnels the packet to region B's gateway
// VIP, and region B delivers it to the hosting server.
package main

import (
	"fmt"
	"log"
	"net/netip"

	"sailfish"
	"sailfish/internal/netpkt"
	"sailfish/internal/tables"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func main() {
	regionA := sailfish.NewDeployment(sailfish.Options{Clusters: 1, FallbackNodes: 0})
	regionB := sailfish.NewDeployment(sailfish.Options{Clusters: 1, FallbackNodes: 0})

	// One global VPC (VNI 500) with presence in both regions.
	vmCN := addr("172.10.0.1") // hosted in region A
	vmUS := addr("172.20.0.9") // hosted in region B
	if _, err := regionA.AddTenant(sailfish.Tenant{
		VNI: 500, Prefix: netip.MustParsePrefix("172.10.0.0/16"),
		VMs: map[netip.Addr]netip.Addr{vmCN: addr("10.1.1.1")},
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := regionB.AddTenant(sailfish.Tenant{
		VNI: 500, Prefix: netip.MustParsePrefix("172.20.0.0/16"),
		VMs: map[netip.Addr]netip.Addr{vmUS: addr("10.9.9.9")},
	}); err != nil {
		log.Fatal(err)
	}
	// Region A learns that the US prefix is reachable through the CEN at
	// region B's gateway VIP (the controller would install this from the
	// global topology).
	bVIP := addr("10.255.0.1")
	for _, n := range regionA.Region.Clusters[0].Nodes {
		if err := n.GW.InstallRoute(500, netip.MustParsePrefix("172.20.0.0/16"),
			tables.Route{Scope: tables.ScopeRemote, Tunnel: bVIP}); err != nil {
			log.Fatal(err)
		}
	}

	// The Chinese VM talks to the American VM.
	raw, err := sailfish.BuildVXLAN(500, vmCN, vmUS, sailfish.ProtoTCP, 7001, 443, []byte("ni hao"))
	if err != nil {
		log.Fatal(err)
	}
	resA, err := regionA.DeliverVXLAN(raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("region A: %v → CEN tunnel to %v (%.2f µs)\n", resA.GW.Action, resA.GW.NC, resA.GW.LatencyNs/1000)

	// The CEN delivers region A's output at region B's gateway.
	hop := make([]byte, len(resA.GW.Out))
	copy(hop, resA.GW.Out)
	resB, err := regionB.DeliverVXLAN(hop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("region B: %v → NC %v (%.2f µs)\n", resB.GW.Action, resB.GW.NC, resB.GW.LatencyNs/1000)

	var p netpkt.Parser
	var pkt netpkt.GatewayPacket
	if err := p.Parse(resB.GW.Out, &pkt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delivered: %v %v:%d → %v:%d payload=%q\n",
		pkt.VXLAN.VNI, pkt.InnerSrc(), pkt.InnerTCP.SrcPort,
		pkt.InnerDst(), pkt.InnerTCP.DstPort, pkt.InnerTCP.Payload())
	fmt.Printf("gateway hops: 2 regions × 2 folded passes = %.1f µs of gateway latency total\n",
		(resA.GW.LatencyNs+resB.GW.LatencyNs)/1000)
}
