// Operations walks the §6.1 production lifecycle of a Sailfish region:
// cluster construction (populate → consistency check → probe packets →
// admit traffic), water-level monitoring with sale gating, and the three
// levels of disaster recovery (port, node, cluster).
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"sailfish"
	"sailfish/internal/cluster"
	"sailfish/internal/telemetry"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func main() {
	d := sailfish.NewDeployment(sailfish.Options{Clusters: 1, NodesPerCluster: 3, FallbackNodes: 1})

	// --- Cluster construction ---
	fmt.Println("== cluster construction (§6.1) ==")
	// Stage the cluster: no user traffic until commissioning passes.
	d.Region.SetClusterEnabled(0, false)

	tenant := sailfish.Tenant{
		VNI:    100,
		Prefix: netip.MustParsePrefix("192.168.10.0/24"),
		VMs: map[netip.Addr]netip.Addr{
			addr("192.168.10.2"): addr("10.1.1.11"),
			addr("192.168.10.3"): addr("10.1.1.12"),
		},
	}
	if _, err := d.AddTenant(tenant); err != nil {
		log.Fatal(err)
	}
	raw, _ := sailfish.BuildVXLAN(100, addr("192.168.10.2"), addr("192.168.10.3"),
		sailfish.ProtoUDP, 1000, 2000, nil)

	// Traffic is refused before admission.
	if _, err := d.DeliverVXLANAt(raw, time.Unix(0, 0)); err == cluster.ErrClusterDisabled {
		fmt.Println("staged cluster refuses traffic:", err)
	}

	// Commission: consistency check + probe packets on every node.
	spec := sailfish.ProbeSpecFor(tenant)
	spec.LocalSrc = addr("192.168.10.2")
	rep, err := d.Commission(0, spec)
	if err != nil {
		log.Fatalf("commissioning failed: %v (%+v)", err, rep.ProbeFailures)
	}
	fmt.Printf("commissioned: consistency=%v probes=pass → traffic admitted\n", rep.Consistency.Consistent)
	if _, err := d.DeliverVXLANAt(raw, time.Unix(0, 0)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("first user packet forwarded")

	// --- Water levels ---
	fmt.Println("\n== water levels ==")
	st := d.Stats()
	fmt.Printf("cluster water levels: %.4f (sale open: %v)\n", st.WaterLevels, d.Controller.SaleOpen())

	// --- Disaster recovery drills ---
	fmt.Println("\n== disaster recovery drills (§6.1) ==")
	res, _ := d.DeliverVXLANAt(raw, time.Unix(0, 0))
	fmt.Printf("baseline: node %s port %d\n", res.NodeID, res.EgressPort)

	// Port level: isolate the flow's port; it migrates within the node.
	nodeIdx := 0
	for i, n := range d.Region.Clusters[0].Nodes {
		if n.ID == res.NodeID {
			nodeIdx = i
		}
	}
	fmt.Println(d.Controller.HandlePortAnomaly(0, nodeIdx, res.EgressPort))
	res2, _ := d.DeliverVXLANAt(raw, time.Unix(0, 0))
	fmt.Printf("after port isolation: node %s port %d (same node, new port)\n", res2.NodeID, res2.EgressPort)

	// Node level: offline the node; peers absorb its share.
	fmt.Println(d.Controller.HandleNodeAnomaly(0, nodeIdx))
	res3, _ := d.DeliverVXLANAt(raw, time.Unix(0, 0))
	fmt.Printf("after node offline: served by %s\n", res3.NodeID)

	// Cluster level: lose every main node; fail over to the hot standby.
	for i := range d.Region.Clusters[0].Nodes {
		d.Controller.HandleNodeAnomaly(0, i)
	}
	fmt.Println(d.Controller.HandleClusterAnomaly(0))
	res4, err := d.DeliverVXLANAt(raw, time.Unix(0, 0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after cluster failover: served by %s (action %v)\n", res4.NodeID, res4.GW.Action)

	// --- Vtrace-style telemetry (§3.1) ---
	fmt.Println("\n== telemetry: localizing loss ==")
	m := telemetry.NewMatcher()
	m.Add(telemetry.Rule{VNI: 100})
	col := telemetry.NewCollector()
	for i, n := range d.Region.Clusters[0].Backup.Nodes {
		n.GW.EnableTelemetry(fmt.Sprintf("xgwh-backup-0-%d", i), m, col)
	}
	// Traffic is currently on the backup cluster (failover above); the
	// next packets emit postcards there.
	d.DeliverVXLANAt(raw, time.Unix(0, 0))
	findings := col.Diagnose([]string{"xgwh-backup-0-2", "nc-10.1.1.12"})
	for _, f := range findings {
		fmt.Println("finding:", f)
	}
	if len(findings) == 0 {
		fmt.Println("no findings (flow healthy)")
	}

	// Recovery: mains repaired, traffic returns.
	for i := range d.Region.Clusters[0].Nodes {
		d.Region.Clusters[0].RestoreNode(i)
	}
	d.Region.RestoreCluster(0)
	res5, _ := d.DeliverVXLANAt(raw, time.Unix(0, 0))
	fmt.Printf("after recovery: served by %s\n", res5.NodeID)
}
