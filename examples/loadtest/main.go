// Loadtest drives a region's concurrent packet driver — one worker
// goroutine per XGW-H, as each chip is an independent pipeline — with a
// multi-flow packet storm, then reports the achieved rate, the per-node
// ECMP spread, and the behavioral latency distribution of the folded
// pipeline model.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/netip"
	"time"

	"sailfish/internal/cluster"
	"sailfish/internal/metrics"
	"sailfish/internal/netpkt"
	"sailfish/internal/tables"
)

func main() {
	packets := flag.Int("n", 200_000, "packets to push")
	nodes := flag.Int("nodes", 4, "XGW-H nodes in the cluster")
	flag.Parse()

	cfg := cluster.DefaultConfig()
	cfg.NodesPerCluster = *nodes
	region := cluster.NewRegion(cfg, 1, 0)
	c := region.Clusters[0]
	c.InstallRoute(100, netip.MustParsePrefix("192.168.0.0/16"), tables.Route{Scope: tables.ScopeLocal})
	c.InstallVM(100, netip.MustParseAddr("192.168.0.5"), netip.MustParseAddr("100.64.0.5"))
	region.FrontEnd.Steering.Assign(100, 0)

	// Distinct flows so ECMP spreads work across nodes.
	flows := make([][]byte, 512)
	for i := range flows {
		b := netpkt.NewSerializeBuffer(128, 256)
		raw, err := (&netpkt.BuildSpec{
			VNI:      100,
			OuterSrc: netip.MustParseAddr("10.1.1.11"),
			OuterDst: netip.MustParseAddr("10.255.0.1"),
			InnerSrc: netip.MustParseAddr("192.168.0.1"),
			InnerDst: netip.MustParseAddr("192.168.0.5"),
			Proto:    netpkt.IPProtocolUDP,
			SrcPort:  uint16(i + 1), DstPort: 80,
			Payload: make([]byte, 64),
		}).Build(b)
		if err != nil {
			log.Fatal(err)
		}
		cp := make([]byte, len(raw))
		copy(cp, raw)
		flows[i] = cp
	}

	d := cluster.NewDriver(region, 1024)
	perNode := map[string]int{}
	lat := metrics.NewHistogram([]float64{2100, 2150, 2200, 2300, 2500})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for dr := range d.Results() {
			if dr.Err != nil {
				log.Fatal(dr.Err)
			}
			perNode[dr.Result.NodeID]++
			lat.Observe(dr.Result.GW.LatencyNs)
		}
	}()

	start := time.Now()
	now := time.Unix(0, 0)
	for i := 0; i < *packets; i++ {
		for !d.Submit(flows[i%len(flows)], now) {
		}
	}
	d.Close()
	<-done
	elapsed := time.Since(start)

	fmt.Printf("pushed %d packets through %d nodes in %v (%.0f kpps behavioral)\n",
		*packets, *nodes, elapsed.Round(time.Millisecond),
		float64(*packets)/elapsed.Seconds()/1000)
	fmt.Println("per-node spread (ECMP):")
	for id, n := range perNode {
		fmt.Printf("  %-16s %7d (%.1f%%)\n", id, n, 100*float64(n)/float64(*packets))
	}
	fmt.Printf("modeled pipeline latency: mean %.0f ns, p50 ≤ %.0f ns, p99 ≤ %.0f ns\n",
		lat.Mean(), lat.Quantile(0.5), lat.Quantile(0.99))
	fmt.Println("(each packet crossed 2 folded pipeline passes; the model's chip does 1.8 Gpps)")
}
