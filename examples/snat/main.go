// SNAT reproduces Fig. 11's hardware/software cooperation end to end: a VM
// behind a private address reaches the Internet through the XGW-x86 SNAT
// path (request steered by XGW-H via a service VNI, source translated,
// tunnel stripped), and the response from the Internet re-enters through
// XGW-x86, which reverses the translation and re-encapsulates toward the
// VM's NC.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"sailfish"
	"sailfish/internal/netpkt"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func main() {
	d := sailfish.NewDeployment(sailfish.Options{Clusters: 1, FallbackNodes: 1})

	// Tenant 300 owns many VMs but few public IPs — the SNAT scenario.
	vm := addr("172.16.0.5")
	if _, err := d.AddTenant(sailfish.Tenant{
		VNI:       300,
		Prefix:    netip.MustParsePrefix("172.16.0.0/24"),
		VMs:       map[netip.Addr]netip.Addr{vm: addr("10.1.1.20")},
		NeedsSNAT: true,
	}); err != nil {
		log.Fatal(err)
	}

	// --- Red arrow: VM → Internet ---
	server := addr("93.184.216.34")
	req, err := sailfish.BuildVXLAN(300, vm, server, sailfish.ProtoTCP, 3333, 443, []byte("GET /"))
	if err != nil {
		log.Fatal(err)
	}
	res, err := d.DeliverVXLAN(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("XGW-H verdict: %v (service VNI steers to software)\n", res.GW.Action)

	// The region routed the packet to the fallback pool; replay it into
	// the SNAT path explicitly to inspect the translated output.
	x86 := d.Region.Fallback[0]
	out, err := x86.ProcessSNATOutbound(req, time.Now())
	if err != nil {
		log.Fatal(err)
	}
	var parser netpkt.Parser
	var plain netpkt.PlainPacket
	if err := parser.ParsePlain(out.Out, &plain); err != nil {
		log.Fatal(err)
	}
	f := plain.Flow()
	fmt.Printf("outbound on the Internet side: %v:%d → %v:%d (tunnel stripped)\n",
		f.Src, f.SrcPort, f.Dst, f.DstPort)

	// --- Blue arrow: Internet → VM ---
	respBuf := netpkt.NewSerializeBuffer(64, 512)
	if err := netpkt.SerializeLayers(respBuf, []byte("200 OK"),
		&netpkt.Ethernet{EtherType: netpkt.EtherTypeIPv4},
		&netpkt.IPv4{TTL: 60, Protocol: netpkt.IPProtocolTCP, SrcIP: server, DstIP: f.Src},
		&netpkt.TCP{SrcPort: 443, DstPort: f.SrcPort, Flags: netpkt.TCPFlagACK},
	); err != nil {
		log.Fatal(err)
	}
	in, err := x86.ProcessSNATInbound(respBuf.Bytes(), time.Now())
	if err != nil {
		log.Fatal(err)
	}
	var pkt netpkt.GatewayPacket
	if err := parser.Parse(in.Out, &pkt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("response re-encapsulated: %v, inner %v:%d → %v:%d, toward NC %v\n",
		pkt.VXLAN.VNI, pkt.InnerSrc(), pkt.InnerTCP.SrcPort,
		pkt.InnerDst(), pkt.InnerTCP.DstPort, in.NC)
	fmt.Printf("payload: %q\n", pkt.InnerTCP.Payload())

	st := x86.Stats()
	fmt.Printf("XGW-x86 stats: snat_out=%d snat_in=%d live_sessions=%d\n",
		st.SNATOut, st.SNATIn, st.SessionsAlive)

	// --- Survivability: the session outlives a failover ---
	// The fallback pool shares one snat.Service: a primary store paired with
	// a standby that replays the primary's delta journal. Pump replication
	// once, then promote the standby the way the recovery ladder would when
	// the main cluster dies mid-connection.
	svc := d.Region.SNATService()
	svc.Sync(time.Now())
	svc.Failover()
	fmt.Printf("failover: promoted the standby — sessions preserved=%d orphaned=%d\n",
		svc.Preserved(), svc.Orphaned())

	// The server retransmits its response; the promoted standby still holds
	// the binding, so the reverse translation works unchanged.
	in2, err := x86.ProcessSNATInbound(respBuf.Bytes(), time.Now())
	if err != nil {
		log.Fatal(err)
	}
	if err := parser.Parse(in2.Out, &pkt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after failover the same response still reaches %v:%d via NC %v\n",
		pkt.InnerDst(), pkt.InnerTCP.DstPort, in2.NC)
}
