package sailfish

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"sailfish/internal/controller"
	"sailfish/internal/netpkt"
	"sailfish/internal/traffic"
	"sailfish/internal/vswitch"
)

// A behavioral end-to-end replay: tenants are generated and placed through
// the controller, a packet stream sampled from the flow mix is pushed
// through the region, and the region's measured forward/fallback split must
// match the traffic mix — the packet-level counterpart of Fig 22's
// flow-level claim.
func TestReplayTrafficMixThroughRegion(t *testing.T) {
	d := NewDeployment(Options{Clusters: 2, NodesPerCluster: 2, FallbackNodes: 2})

	tcfg := traffic.DefaultConfig()
	tcfg.Tenants = 24
	tcfg.VMsPerTenant = 8
	gen := traffic.NewGenerator(tcfg)
	tenants := gen.Tenants()

	// Install most tenants in hardware; the last few stay software-only
	// (volatile entries), so their traffic takes the fallback path.
	const softwareOnly = 4
	hw := tenants[:len(tenants)-softwareOnly]
	sw := tenants[len(tenants)-softwareOnly:]
	for _, tn := range hw {
		te := controller.FromTrafficTenant(tn)
		if _, err := d.Controller.PlaceTenant(te); err != nil {
			t.Fatal(err)
		}
	}
	for _, tn := range sw {
		// Steering must know the tenant (the LB routes by VNI), but the
		// hardware tables never learn it; the x86 pool holds the state.
		placedOn := 0
		d.Region.FrontEnd.Steering.Assign(tn.VNI, placedOn)
		for _, fb := range d.Region.Fallback {
			fb.Routes.Insert(tn.VNI, tn.Prefix, Route{Scope: ScopeLocal})
			for i, vm := range tn.VMs {
				fb.VMNC.Insert(tn.VNI, vm, tn.NCs[i])
			}
		}
	}

	// Replay: 5% of packets belong to software-only tenants.
	rng := rand.New(rand.NewSource(42))
	const packets = 2000
	var wantSoftware int
	now := time.Unix(0, 0)
	for i := 0; i < packets; i++ {
		var tn traffic.Tenant
		if rng.Float64() < 0.05 {
			tn = sw[rng.Intn(len(sw))]
			wantSoftware++
		} else {
			tn = hw[rng.Intn(len(hw))]
		}
		src := tn.VMs[rng.Intn(len(tn.VMs))]
		dst := tn.VMs[rng.Intn(len(tn.VMs))]
		raw, err := BuildVXLAN(tn.VNI, src, dst, ProtoUDP, uint16(1000+i%60000), 80, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.DeliverVXLANAt(raw, now)
		if err != nil {
			t.Fatalf("packet %d (%v): %v", i, tn.VNI, err)
		}
		switch res.GW.Action {
		case ActionForward:
			// Hardware path: the NC must be the tenant's mapping.
			want := netip.Addr{}
			for j, vm := range tn.VMs {
				if vm == dst {
					want = tn.NCs[j]
				}
			}
			if res.GW.NC != want {
				t.Fatalf("packet %d: NC %v, want %v", i, res.GW.NC, want)
			}
		case ActionFallback:
			if !res.ViaFallback {
				t.Fatalf("packet %d: fallback not completed by x86", i)
			}
		default:
			t.Fatalf("packet %d dropped: %s", i, res.GW.DropReason)
		}
	}
	st := d.Stats()
	if got := int(st.Region.Fallback); got != wantSoftware {
		t.Fatalf("fallback packets %d, want %d", got, wantSoftware)
	}
	if st.Region.Forwarded != uint64(packets-wantSoftware) {
		t.Fatalf("forwarded %d, want %d", st.Region.Forwarded, packets-wantSoftware)
	}
	if st.Region.Dropped != 0 {
		t.Fatalf("drops: %+v", st.Region)
	}
}

// The software share of the replay must be a sliver of bytes when the mix
// uses the production fallback share (Fig 22's shape at packet level).
func TestReplayFallbackSliver(t *testing.T) {
	d := NewDeployment(Options{Clusters: 1, NodesPerCluster: 1, FallbackNodes: 1})
	if _, err := d.AddTenant(Tenant{
		VNI:    100,
		Prefix: mustPrefix("192.168.0.0/24"),
		VMs:    map[netip.Addr]netip.Addr{mustAddr("192.168.0.2"): mustAddr("10.1.1.2")},
	}); err != nil {
		t.Fatal(err)
	}
	// 10000 hardware packets, 2 software ones (route miss within the
	// steered VNI — a volatile destination not in hardware).
	raw, _ := BuildVXLAN(100, mustAddr("192.168.0.1"), mustAddr("192.168.0.2"), ProtoUDP, 1, 2, nil)
	miss, _ := BuildVXLAN(100, mustAddr("192.168.0.1"), mustAddr("10.99.0.1"), ProtoUDP, 3, 4, nil)
	now := time.Unix(0, 0)
	for i := 0; i < 10000; i++ {
		if _, err := d.DeliverVXLANAt(raw, now); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := d.DeliverVXLANAt(miss, now); err != nil {
			t.Fatal(err)
		}
	}
	n := d.Region.Clusters[0].Nodes[0]
	gs := n.GW.Stats()
	ratio := float64(gs.FallbackBytes) / float64(gs.TotalBytes)
	if ratio > 0.001 {
		t.Fatalf("fallback byte ratio %.5f — not a sliver", ratio)
	}
	if gs.Fallback != 2 {
		t.Fatalf("fallback count %d", gs.Fallback)
	}
}

// Cross-region traffic (Table 1's "VM-Cross-region"): region A remote-routes
// the destination prefix to region B's gateway VIP over the CEN; region B
// completes delivery to the hosting NC. Two full Sailfish regions, one
// packet end to end.
func TestCrossRegionThroughCEN(t *testing.T) {
	regionA := NewDeployment(Options{Clusters: 1, NodesPerCluster: 1, FallbackNodes: 0})
	regionB := NewDeployment(Options{Clusters: 1, NodesPerCluster: 1, FallbackNodes: 0})

	// Tenant 500 lives in both regions (a global VPC): its US prefix is
	// local to B; region A routes that prefix remotely to B's VIP.
	bVIP := mustAddr("10.255.0.1") // region B's gateway address
	if _, err := regionB.AddTenant(Tenant{
		VNI:    500,
		Prefix: mustPrefix("172.20.0.0/16"),
		VMs:    map[netipAddr]netipAddr{mustAddr("172.20.0.9"): mustAddr("10.9.9.9")},
	}); err != nil {
		t.Fatal(err)
	}
	// Region A: the tenant's local prefix plus the remote route.
	if _, err := regionA.AddTenant(Tenant{
		VNI:    500,
		Prefix: mustPrefix("172.10.0.0/16"),
		VMs:    map[netipAddr]netipAddr{mustAddr("172.10.0.1"): mustAddr("10.1.1.1")},
	}); err != nil {
		t.Fatal(err)
	}
	for _, n := range regionA.Region.Clusters[0].Nodes {
		if err := n.GW.InstallRoute(500, mustPrefix("172.20.0.0/16"),
			Route{Scope: ScopeRemote, Tunnel: bVIP}); err != nil {
			t.Fatal(err)
		}
	}

	// VM in region A sends to the VM in region B.
	raw, err := BuildVXLAN(500, mustAddr("172.10.0.1"), mustAddr("172.20.0.9"), ProtoTCP, 7777, 443, []byte("xr"))
	if err != nil {
		t.Fatal(err)
	}
	resA, err := regionA.DeliverVXLANAt(raw, benchTime)
	if err != nil {
		t.Fatal(err)
	}
	if resA.GW.Action != ActionForward || resA.GW.NC != bVIP {
		t.Fatalf("region A: %+v", resA.GW)
	}
	// The CEN carries region A's output to region B's gateway.
	hop := make([]byte, len(resA.GW.Out))
	copy(hop, resA.GW.Out)
	resB, err := regionB.DeliverVXLANAt(hop, benchTime)
	if err != nil {
		t.Fatal(err)
	}
	if resB.GW.Action != ActionForward || resB.GW.NC != mustAddr("10.9.9.9") {
		t.Fatalf("region B: %+v (%s)", resB.GW, resB.GW.DropReason)
	}
	// The inner frame survived both regions intact.
	var p netpkt.Parser
	var pkt netpkt.GatewayPacket
	if err := p.Parse(resB.GW.Out, &pkt); err != nil {
		t.Fatal(err)
	}
	if pkt.InnerSrc() != mustAddr("172.10.0.1") || pkt.InnerDst() != mustAddr("172.20.0.9") {
		t.Fatalf("inner frame corrupted: %v -> %v", pkt.InnerSrc(), pkt.InnerDst())
	}
	if string(pkt.InnerTCP.Payload()) != "xr" {
		t.Fatal("payload corrupted across regions")
	}
}

// The complete Fig 1/Fig 2 loop: VM → vSwitch (encap) → region gateway
// (route + rewrite) → destination vSwitch (decap) → VM inbox.
func TestVMToVMThroughFullStack(t *testing.T) {
	d := NewDeployment(Options{Clusters: 1, NodesPerCluster: 2, FallbackNodes: 0})
	vm1, vm2 := mustAddr("192.168.10.2"), mustAddr("192.168.10.3")
	nc1, nc2 := mustAddr("10.1.1.11"), mustAddr("10.1.1.12")
	if _, err := d.AddTenant(Tenant{
		VNI:    100,
		Prefix: mustPrefix("192.168.10.0/24"),
		VMs:    map[netipAddr]netipAddr{vm1: nc1, vm2: nc2},
	}); err != nil {
		t.Fatal(err)
	}
	gwVIP := mustAddr("10.255.0.1")
	vs1 := vswitch.New(nc1, gwVIP)
	vs2 := vswitch.New(nc2, gwVIP)
	vs1.AttachVM(100, vm1)
	vs2.AttachVM(100, vm2)

	// vm1 sends to vm2: different NCs, so the vSwitch tunnels to the
	// gateway.
	out, err := vs1.Send(vm1, vm2, ProtoTCP, 5555, 80, []byte("full stack"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Local {
		t.Fatal("cross-NC traffic handled locally")
	}
	res, err := d.DeliverVXLANAt(out.Wire, benchTime)
	if err != nil {
		t.Fatal(err)
	}
	if res.GW.Action != ActionForward || res.GW.NC != nc2 {
		t.Fatalf("gateway verdict: %+v", res.GW)
	}
	// The rewritten frame lands at vm2's vSwitch.
	del, err := vs2.Receive(res.GW.Out)
	if err != nil {
		t.Fatal(err)
	}
	if del.VM != vm2 || del.Src != vm1 || string(del.Payload) != "full stack" {
		t.Fatalf("delivery = %+v", del)
	}
	if got := vs2.Inbox(vm2); len(got) != 1 {
		t.Fatalf("inbox = %v", got)
	}
	// The reply takes the same machinery in reverse.
	back, err := vs2.Send(vm2, vm1, ProtoTCP, 80, 5555, []byte("ack"))
	if err != nil {
		t.Fatal(err)
	}
	res, err = d.DeliverVXLANAt(back.Wire, benchTime)
	if err != nil || res.GW.NC != nc1 {
		t.Fatalf("reply: %+v %v", res.GW, err)
	}
	if _, err := vs1.Receive(res.GW.Out); err != nil {
		t.Fatal(err)
	}
	if got := vs1.Inbox(vm1); len(got) != 1 || string(got[0].Payload) != "ack" {
		t.Fatalf("reply inbox = %v", got)
	}
}

// Chaos: random node/port/cluster failures and recoveries interleaved with
// traffic. The safety invariant is absolute: a forwarded packet always goes
// to the destination VM's correct NC; failures may surface as explicit
// errors (no capacity) but never as misdelivery.
func TestChaosFailuresNeverMisdeliver(t *testing.T) {
	d := NewDeployment(Options{Clusters: 2, NodesPerCluster: 3, FallbackNodes: 1})
	type vmRec struct {
		vni VNI
		vm  netipAddr
		nc  netipAddr
	}
	var recs []vmRec
	for i := 0; i < 8; i++ {
		vni := VNI(100 + i)
		vms := map[netipAddr]netipAddr{}
		for j := 0; j < 4; j++ {
			vm := netip.AddrFrom4([4]byte{192, 168, byte(i), byte(10 + j)})
			nc := netip.AddrFrom4([4]byte{10, 1, byte(i), byte(10 + j)})
			vms[vm] = nc
			recs = append(recs, vmRec{vni, vm, nc})
		}
		if _, err := d.AddTenant(Tenant{
			VNI:    vni,
			Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{192, 168, byte(i), 0}), 24),
			VMs:    vms,
		}); err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(77))
	now := time.Unix(0, 0)
	var delivered, unavailable int
	for step := 0; step < 400; step++ {
		// Random fault/recovery action.
		c := d.Region.Clusters[rng.Intn(len(d.Region.Clusters))]
		switch rng.Intn(6) {
		case 0:
			c.FailNode(rng.Intn(len(c.Nodes)))
		case 1:
			c.RestoreNode(rng.Intn(len(c.Nodes)))
		case 2:
			n := c.Nodes[rng.Intn(len(c.Nodes))]
			n.FailPort(rng.Intn(8))
		case 3:
			n := c.Nodes[rng.Intn(len(c.Nodes))]
			n.RestorePort(rng.Intn(8))
		case 4:
			d.Region.FailoverCluster(c.ID)
		case 5:
			d.Region.RestoreCluster(c.ID)
		}
		// Traffic burst against random destinations.
		for k := 0; k < 5; k++ {
			to := recs[rng.Intn(len(recs))]
			src := netip.AddrFrom4([4]byte{192, 168, byte(int(to.vni) - 100), 9})
			raw, err := BuildVXLAN(to.vni, src, to.vm, ProtoUDP, uint16(rng.Intn(60000)+1), 80, nil)
			if err != nil {
				t.Fatal(err)
			}
			res, err := d.DeliverVXLANAt(raw, now)
			if err != nil {
				// Acceptable: no live nodes right now.
				unavailable++
				continue
			}
			if res.GW.Action != ActionForward {
				t.Fatalf("step %d: unexpected action %v (%s)", step, res.GW.Action, res.GW.DropReason)
			}
			if res.GW.NC != to.nc {
				t.Fatalf("step %d: MISDELIVERY %v -> %v, want %v", step, to.vm, res.GW.NC, to.nc)
			}
			delivered++
		}
	}
	if delivered == 0 {
		t.Fatal("chaos killed all delivery — test not exercising the data path")
	}
	t.Logf("chaos: %d delivered, %d unavailable", delivered, unavailable)
}
