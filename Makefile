GO ?= go

# Packages with concurrent control-plane loops or a live observability
# surface (Stats/scrapes racing the data plane) get an extra -race pass.
RACE_PKGS := ./internal/controller/... ./internal/cluster/... ./internal/faults/... \
	./internal/metrics/... ./internal/xgwh/... ./internal/xgw86/... ./cmd/sailfish-gw/... \
	./internal/trace/... ./internal/heavyhitter/... ./internal/telemetry/... \
	./internal/placement/... ./internal/snat/... ./internal/shardplane/... \
	./internal/xgwdpu/... ./internal/slo/... ./internal/sim/...

.PHONY: check vet lint-metrics build test race chaos bench bench-all bench-smoke bench-smoke-mc fmt

## check: the full gate — vet, the metrics-name lint, build, tests, and the
## race pass.
check: vet lint-metrics build test race

vet:
	$(GO) vet ./...

## lint-metrics: every registered metric name matches ^sailfish_[a-z0-9_]+$
## and no two packages register the same family (allowlisted shares aside) —
## a collision would silently merge two subsystems' series on a scrape.
lint-metrics:
	$(GO) run ./cmd/metrics-lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: the concurrency gate. GOMAXPROCS=4 forces real interleaving for
## the sharded data plane (shardplane workers, gw workers mode, driver)
## even on single-core CI runners, where the default would serialize
## goroutines and hide races.
race:
	GOMAXPROCS=4 $(GO) test -race $(RACE_PKGS)

## chaos: run the seeded disaster-recovery scenario end to end.
chaos:
	$(GO) run ./cmd/sailfish-gw -chaos

## bench: run the fast-path benchmarks and refresh BENCH_fastpath.json.
## For regressions, prefer benchstat over eyeballing single runs:
##   go test -run '^$$' -bench BenchmarkRegionForward -benchmem -count 10 . > old.txt
##   ... change ...
##   go test -run '^$$' -bench BenchmarkRegionForward -benchmem -count 10 . > new.txt
##   benchstat old.txt new.txt
bench:
	$(GO) test -run '^$$' -bench 'RegionForward|DriverParallel' -benchmem . ./internal/cluster/
	$(GO) run ./cmd/fastpath-bench -o BENCH_fastpath.json

## bench-all: the full suite — every figure/table regeneration plus the fast path.
bench-all:
	$(GO) test -bench=. -benchmem ./...

## bench-smoke: one iteration of every benchmark — a CI-cheap compile-and-run
## check that the benchmarks themselves have not rotted. Not a measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
	$(GO) run ./cmd/fastpath-bench -snat-max 1000000 -lpm-max 200000 -o /tmp/bench-smoke.json

## bench-smoke-mc: the multi-core variant — the same smoke pass pinned to
## GOMAXPROCS=4 so the sharded shardplane rows actually run their workers
## in parallel (and the 0 allocs/op gate holds under real concurrency).
bench-smoke-mc:
	GOMAXPROCS=4 $(GO) test -run '^$$' -bench ShardPlane -benchtime 1x ./internal/shardplane/
	GOMAXPROCS=4 $(GO) run ./cmd/fastpath-bench -snat-max 1000000 -lpm-max 200000 -o /tmp/bench-smoke-mc.json

fmt:
	gofmt -l -w .
