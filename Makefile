GO ?= go

# Packages with concurrent control-plane loops get an extra -race pass.
RACE_PKGS := ./internal/controller/... ./internal/cluster/... ./internal/faults/...

.PHONY: check vet build test race chaos bench fmt

## check: the full gate — vet, build, tests, and the race pass.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

## chaos: run the seeded disaster-recovery scenario end to end.
chaos:
	$(GO) run ./cmd/sailfish-gw -chaos

bench:
	$(GO) test -bench=. -benchmem ./...

fmt:
	gofmt -l -w .
