// Command sailfish-bench regenerates the paper's tables and figures from
// the reproduction's models and simulators.
//
// Usage:
//
//	sailfish-bench                 # run everything at full scale
//	sailfish-bench -exp fig17      # one experiment
//	sailfish-bench -scale 0.25     # shrink the simulated windows 4x
//	sailfish-bench -list           # list experiment ids
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sailfish/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id (empty = all); comma-separated list allowed")
	scale := flag.Float64("scale", 1.0, "simulation window scale in (0,1]")
	list := flag.Bool("list", false, "list experiment ids and exit")
	asJSON := flag.Bool("json", false, "emit reports as JSON lines")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return
	}
	if *scale <= 0 || *scale > 1 {
		fmt.Fprintln(os.Stderr, "sailfish-bench: -scale must be in (0,1]")
		os.Exit(2)
	}

	var ids []string
	if *exp == "" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	for _, id := range ids {
		run, ok := experiments.Lookup(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "sailfish-bench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		rep := run(*scale)
		if *asJSON {
			out, err := json.Marshal(struct {
				ID      string  `json:"id"`
				Title   string  `json:"title"`
				Seconds float64 `json:"seconds"`
				Text    string  `json:"text"`
			}{rep.ID, rep.Title, time.Since(start).Seconds(), rep.Text})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(string(out))
			continue
		}
		fmt.Printf("=== %s — %s (%.2fs)\n%s\n", rep.ID, rep.Title, time.Since(start).Seconds(), rep.Text)
	}
}
