package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a fake module for the scanner.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const goodSrc = `package a
func register(reg *Registry) {
	reg.Counter("sailfish_a_total", "h", nil)
	reg.Counter("sailfish_a_total", "h", Labels{"vni": "1"}) // label variant: fine
	reg.GaugeFunc("sailfish_a_level", "h", nil, func() float64 { return 0 })
}`

// TestScanFindsLiteralSites: the AST walk sees method and multi-line calls
// and skips test files and dynamic names.
func TestScanFindsLiteralSites(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a/a.go": goodSrc + "\n" + `func more(reg *Registry, name string) {
	reg.Histogram(
		"sailfish_a_latency_ns",
		"h", nil, nil)
	reg.Counter(name, "dynamic: skipped", nil)
}`,
		"a/a_test.go": `package a
func testOnly(reg *Registry) { reg.Counter("not_a_metric", "h", nil) }`,
	})
	sites, err := scan(root)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	for _, s := range sites {
		names[s.name]++
	}
	if names["sailfish_a_total"] != 2 || names["sailfish_a_level"] != 1 || names["sailfish_a_latency_ns"] != 1 {
		t.Fatalf("scan = %v", names)
	}
	if names["not_a_metric"] != 0 {
		t.Fatal("test file leaked into the scan")
	}
	if len(check(sites)) != 0 {
		t.Fatalf("clean tree flagged: %v", check(sites))
	}
}

// TestCheckRejectsMalformedNames: names outside ^sailfish_[a-z0-9_]+$ fail.
func TestCheckRejectsMalformedNames(t *testing.T) {
	for _, bad := range []string{"gw_drops_total", "sailfish_Drops", "sailfish_drops-total", "sailfish_"} {
		probs := check([]site{{name: bad, pkg: "a", pos: "a/a.go:1"}})
		if len(probs) != 1 || !strings.Contains(probs[0], bad) {
			t.Fatalf("name %q: problems = %v", bad, probs)
		}
	}
}

// TestCheckCrossPackageCollision: the same family from two packages is an
// error, unless the allowlist covers exactly those packages.
func TestCheckCrossPackageCollision(t *testing.T) {
	probs := check([]site{
		{name: "sailfish_x_total", pkg: "internal/a", pos: "internal/a/a.go:1"},
		{name: "sailfish_x_total", pkg: "internal/b", pos: "internal/b/b.go:1"},
	})
	if len(probs) != 1 || !strings.Contains(probs[0], "sailfish_x_total") {
		t.Fatalf("collision not flagged: %v", probs)
	}

	// The region ledger share is deliberate and stays allowed.
	probs = check([]site{
		{name: "sailfish_region_forwarded_total", pkg: "internal/cluster", pos: "c.go:1"},
		{name: "sailfish_region_forwarded_total", pkg: "internal/shardplane", pos: "s.go:1"},
	})
	if len(probs) != 0 {
		t.Fatalf("allowlisted share flagged: %v", probs)
	}

	// A third package horning in on an allowlisted family is still an error.
	probs = check([]site{
		{name: "sailfish_region_forwarded_total", pkg: "internal/cluster", pos: "c.go:1"},
		{name: "sailfish_region_forwarded_total", pkg: "internal/rogue", pos: "r.go:1"},
	})
	if len(probs) != 1 {
		t.Fatalf("rogue share not flagged: %v", probs)
	}
}

// TestRepoIsClean runs the real scan over this repository — the same gate
// `make check` enforces.
func TestRepoIsClean(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Skip("module root not found:", err)
	}
	sites, err := scan(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) == 0 {
		t.Fatal("scan found no metric registrations; scanner broken?")
	}
	if probs := check(sites); len(probs) != 0 {
		t.Fatalf("repository metric names unclean:\n%s", strings.Join(probs, "\n"))
	}
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
