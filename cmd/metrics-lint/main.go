// Command metrics-lint statically checks every metric name registered in
// the tree: each string-literal name passed to the metrics registry's
// constructors (Counter, Gauge, CounterFunc, GaugeFunc, Histogram,
// NewStageHistograms) must match ^sailfish_[a-z0-9_]+$ and be unique across
// packages, so two subsystems can never fight over one time series on a
// scrape. Within a package the same name may appear many times — those are
// label variants of one family. A small allowlist admits the deliberate
// cross-package shares (the shardplane re-exports the region ledger under
// the sailfish_region_* names).
//
// It parses source with go/parser only — no type checking, no build — so it
// runs in milliseconds as part of `make check`. Dynamically computed names
// are invisible to it; keep registration names literal.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var namePattern = regexp.MustCompile(`^sailfish_[a-z0-9_]+$`)

// registrars maps constructor names to the index of their metric-name
// argument (NewStageHistograms takes the registry first).
var registrars = map[string]int{
	"Counter":            0,
	"Gauge":              0,
	"CounterFunc":        0,
	"GaugeFunc":          0,
	"Histogram":          0,
	"NewStageHistograms": 1,
}

// sharedNames lists the metric-name prefixes that two packages may both
// register, with the exact set of packages allowed to do so.
var sharedNames = map[string][]string{
	"sailfish_region_": {"internal/cluster", "internal/shardplane"},
}

// site is one literal registration.
type site struct {
	name string
	pkg  string // directory relative to the scan root
	pos  string // file:line for the report
}

func main() {
	root := flag.String("root", ".", "module root to scan")
	flag.Parse()

	sites, err := scan(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metrics-lint:", err)
		os.Exit(1)
	}
	problems := check(sites)
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, p)
	}
	if len(problems) > 0 {
		os.Exit(1)
	}
	names := map[string]bool{}
	pkgs := map[string]bool{}
	for _, s := range sites {
		names[s.name] = true
		pkgs[s.pkg] = true
	}
	fmt.Printf("metrics-lint: %d metric names across %d packages, all well-formed and collision-free\n",
		len(names), len(pkgs))
}

// scan walks root and collects every literal metric registration from
// non-test Go files.
func scan(root string) ([]site, error) {
	var sites []site
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", "vendor":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			rel = filepath.Dir(path)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var callee string
			switch fn := call.Fun.(type) {
			case *ast.SelectorExpr:
				callee = fn.Sel.Name
			case *ast.Ident:
				callee = fn.Name
			default:
				return true
			}
			argIdx, ok := registrars[callee]
			if !ok || len(call.Args) <= argIdx {
				return true
			}
			lit, ok := call.Args[argIdx].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true // dynamic name: invisible to the lint
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			pos := fset.Position(lit.Pos())
			sites = append(sites, site{
				name: name,
				pkg:  filepath.ToSlash(rel),
				pos:  fmt.Sprintf("%s:%d", pos.Filename, pos.Line),
			})
			return true
		})
		return nil
	})
	return sites, err
}

// check validates the collected sites: well-formed names, and no metric
// family registered from two packages unless allowlisted.
func check(sites []site) []string {
	var problems []string
	byName := map[string][]site{}
	for _, s := range sites {
		if !namePattern.MatchString(s.name) {
			problems = append(problems,
				fmt.Sprintf("%s: metric name %q does not match %s", s.pos, s.name, namePattern))
			continue
		}
		byName[s.name] = append(byName[s.name], s)
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pkgs := map[string]bool{}
		for _, s := range byName[n] {
			pkgs[s.pkg] = true
		}
		if len(pkgs) < 2 || allowedShare(n, pkgs) {
			continue
		}
		var where []string
		for _, s := range byName[n] {
			where = append(where, s.pos)
		}
		sort.Strings(where)
		problems = append(problems, fmt.Sprintf(
			"metric %q registered from %d packages (%s) — one scrape, one owner; rename or allowlist",
			n, len(pkgs), strings.Join(where, ", ")))
	}
	sort.Strings(problems)
	return problems
}

// allowedShare reports whether every package registering the name is in the
// allowlist entry covering it.
func allowedShare(name string, pkgs map[string]bool) bool {
	for prefix, allowed := range sharedNames {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		ok := true
		for p := range pkgs {
			found := false
			for _, a := range allowed {
				if p == a {
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
