package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"sailfish/internal/adminapi"
)

// cmdSNAT fetches and renders the /snat survivability view: serving side,
// session counts, promotion accounting, replication health and the
// per-shard occupancy/backlog table.
func cmdSNAT(args []string) {
	fs := flag.NewFlagSet("snat", flag.ExitOnError)
	admin := fs.String("admin", "http://127.0.0.1:9090", "sailfish-gw admin plane base URL")
	shards := fs.Bool("shards", true, "include the per-shard table")
	fs.Parse(args)
	if err := runSNAT(os.Stdout, *admin, *shards); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runSNAT renders the /snat view.
func runSNAT(w io.Writer, admin string, shards bool) error {
	var sr adminapi.SNATResponse
	if err := getJSON(admin, "/snat", nil, &sr); err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(w, sr)
	}
	side := "primary"
	if sr.OnBackup {
		side = "backup (promoted standby)"
	}
	fmt.Fprintf(w, "serving side: %s\n", side)
	fmt.Fprintf(w, "sessions: %d live (standby holds %d), %.1f MiB resident\n",
		sr.Sessions, sr.StandbySess, float64(sr.MemoryBytes)/(1<<20))
	fmt.Fprintf(w, "promotions: %d (preserved %d, orphaned %d)\n",
		sr.Promotions, sr.Preserved, sr.Orphaned)
	fmt.Fprintf(w, "replication: lag %.3fs, %d deltas applied, %d snapshots (gen %d), %d retries, %d gaps, %d failed\n",
		sr.LagSeconds, sr.DeltasApplied, sr.Snapshots, sr.SnapshotGen, sr.Retries, sr.Gaps, sr.Failed)
	if !shards {
		return nil
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  SHARD\tLIVE\tSLOTS\tPORT-CAP\tJOURNAL\tPENDING\tSNAP?")
	for _, sh := range sr.Shards {
		snap := ""
		if sh.AwaitingSnap {
			snap = "awaiting"
		}
		fmt.Fprintf(tw, "  %d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			sh.Shard, sh.Live, sh.Slots, sh.PortCapacity, sh.JournalDepth, sh.PendingDelta, snap)
	}
	return tw.Flush()
}
