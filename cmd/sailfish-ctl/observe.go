package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"text/tabwriter"

	"sailfish/internal/adminapi"
)

// The observe subcommands are HTTP clients of a running sailfish-gw admin
// plane: `top` renders the heavy-hitter telemetry (/topk) and `trace` the
// flight recorder (/debug/trace, /debug/trace/drops). They share the
// adminapi wire types with the daemon.

// cmdTop fetches and renders the heavy-hitter view.
func cmdTop(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	admin := fs.String("admin", "http://127.0.0.1:9090", "sailfish-gw admin plane base URL")
	coverage := fs.Float64("coverage", 0.95, "residency coverage target (the 95 in 95/5)")
	n := fs.Int("n", 10, "flows to list")
	fs.Parse(args)
	if err := runTop(os.Stdout, *admin, *coverage, *n); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// cmdTrace fetches and renders flight-recorder events, or the cumulative
// drop tallies with -drops.
func cmdTrace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	admin := fs.String("admin", "http://127.0.0.1:9090", "sailfish-gw admin plane base URL")
	flow := fs.String("flow", "", "filter: flow hash (hex as printed by top/trace)")
	vni := fs.Uint("vni", 0, "filter: tenant VNI (0 = any)")
	drops := fs.Bool("drops", false, "show the cumulative per-stage drop tallies instead of events")
	n := fs.Int("n", 0, "cap on events returned (newest kept; 0 = all)")
	fs.Parse(args)
	var err error
	if *drops && *flow == "" && *vni == 0 {
		err = runTraceDrops(os.Stdout, *admin)
	} else {
		err = runTrace(os.Stdout, *admin, *flow, *vni, *drops, *n)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// emitJSON renders a raw admin DTO for the global --json flag.
func emitJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// getJSON fetches one admin endpoint into out.
func getJSON(base, path string, query url.Values, out any) error {
	u := base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: %s: %s", u, resp.Status, body)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// runTop renders the /topk view: residency for the coverage target, the
// flow top-K and the per-VNI skew summary.
func runTop(w io.Writer, admin string, coverage float64, n int) error {
	q := url.Values{}
	q.Set("coverage", strconv.FormatFloat(coverage, 'g', -1, 64))
	q.Set("n", strconv.Itoa(n))
	var tk adminapi.TopKResponse
	if err := getJSON(admin, "/topk", q, &tk); err != nil {
		return err
	}
	fmt.Fprintf(w, "observed packets: %d\n", tk.TotalPackets)
	fmt.Fprintf(w, "hot route entries for %.1f%% coverage: %d entries carry ≥%.2f%% of traffic\n",
		100*tk.TargetCoverage, len(tk.Routes), 100*tk.AchievedCoverage)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  VNI\tDIP\tPKTS\tERR\tSHARE")
	for _, r := range tk.Routes {
		fmt.Fprintf(tw, "  %d\t%s\t%d\t%d\t%.2f%%\n", r.VNI, r.DIP, r.Packets, r.MaxErr, 100*r.Share)
	}
	tw.Flush()
	fmt.Fprintf(w, "top %d flows:\n", len(tk.Flows))
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  VNI\tFLOW\tPKTS\tSHARE")
	for _, f := range tk.Flows {
		fmt.Fprintf(tw, "  %d\t%s\t%d\t%.2f%%\n", f.VNI, f.FlowHash, f.Packets, 100*f.Share)
	}
	tw.Flush()
	fmt.Fprintln(w, "per-VNI skew:")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  VNI\tPKTS\tBYTES\tSHARE\tHOT-SHARE")
	for _, v := range tk.VNIs {
		fmt.Fprintf(tw, "  %d\t%d\t%d\t%.2f%%\t%.2f%%\n", v.VNI, v.Packets, v.Bytes, 100*v.Share, 100*v.HotShare)
	}
	return tw.Flush()
}

// runTrace renders flight-recorder events under the given filters.
func runTrace(w io.Writer, admin, flow string, vni uint, drops bool, n int) error {
	q := url.Values{}
	if flow != "" {
		q.Set("flow", flow)
	}
	if vni != 0 {
		q.Set("vni", strconv.FormatUint(uint64(vni), 10))
	}
	if drops {
		q.Set("drops", "1")
	}
	if n > 0 {
		q.Set("n", strconv.Itoa(n))
	}
	var tr adminapi.TraceResponse
	if err := getJSON(admin, "/debug/trace", q, &tr); err != nil {
		return err
	}
	fmt.Fprintf(w, "%d events (forward sampling 1-in-%d; drops always captured)\n",
		len(tr.Events), 1<<tr.SampleShift)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  TIME-NS\tFLOW\tVNI\tDEVICE\tSTAGE\tVERDICT\tREASON")
	for _, ev := range tr.Events {
		fmt.Fprintf(tw, "  %d\t%s\t%d\t%s\t%s\t%s\t%s\n",
			ev.TimeNs, ev.FlowHash, ev.VNI, ev.Device, ev.Stage, ev.Verdict, ev.Reason)
	}
	return tw.Flush()
}

// runTraceDrops renders the wrap-immune cumulative drop tallies.
func runTraceDrops(w io.Writer, admin string) error {
	var dr adminapi.DropsResponse
	if err := getJSON(admin, "/debug/trace/drops", nil, &dr); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "STAGE\tREASON\tCOUNT")
	for _, d := range dr.Drops {
		fmt.Fprintf(tw, "%s\t%s\t%d\n", d.Stage, d.Reason, d.Count)
	}
	return tw.Flush()
}
