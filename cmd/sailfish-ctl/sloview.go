package main

import (
	"flag"
	"fmt"
	"io"
	"net/url"
	"os"
	"strconv"
	"text/tabwriter"
	"time"

	"sailfish/internal/adminapi"
)

// The SLO subcommands watch a daemon's per-tenant budget: `slo` renders the
// /slo burn-rate view (or one tenant's /slo/{vni} history), `events` tails
// the unified ops journal behind /events, optionally following the cursor.

// cmdSLO fetches and renders the per-tenant SLO view. An optional positional
// VNI narrows to one tenant and includes its per-tick history.
func cmdSLO(args []string) {
	fs := flag.NewFlagSet("slo", flag.ExitOnError)
	admin := fs.String("admin", "http://127.0.0.1:9090", "sailfish-gw admin plane base URL")
	fs.Parse(args)
	var err error
	if fs.NArg() > 0 {
		var vni uint64
		if vni, err = strconv.ParseUint(fs.Arg(0), 10, 32); err != nil {
			fmt.Fprintf(os.Stderr, "bad vni %q: %v\n", fs.Arg(0), err)
			os.Exit(2)
		}
		err = runSLOTenant(os.Stdout, *admin, uint32(vni))
	} else {
		err = runSLO(os.Stdout, *admin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runSLO renders the /slo view: policy, engine state, and one row per tenant.
func runSLO(w io.Writer, admin string) error {
	var sr adminapi.SLOResponse
	if err := getJSON(admin, "/slo", nil, &sr); err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(w, sr)
	}
	if !sr.Enabled {
		fmt.Fprintln(w, "slo: not enabled on this daemon")
		return nil
	}
	fmt.Fprintf(w, "policy: loss budget %.4f%%, fast %s burn ≥%.0f, slow %s burn ≥%.0f (%d ticks)\n",
		100*sr.LossBudget,
		time.Duration(sr.FastWindowNs), sr.FastBurnThreshold,
		time.Duration(sr.SlowWindowNs), sr.SlowBurnThreshold, sr.Ticks)
	if sr.LatencyP50Ns > 0 || sr.LatencyP99Ns > 0 {
		fmt.Fprintf(w, "pipeline latency: p50 %.0fns, p99 %.0fns\n", sr.LatencyP50Ns, sr.LatencyP99Ns)
	}
	fmt.Fprintf(w, "alerts firing: %d\n", sr.ActiveAlerts)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  VNI\tATTEMPTED\tDROPPED\tFAST-BURN\tSLOW-BURN\tCOVERAGE\tALERTS")
	for _, t := range sr.Tenants {
		fmt.Fprintf(tw, "  %d\t%d\t%d\t%.2f\t%.2f\t%.2f%%\t%s\n",
			t.VNI, t.Attempted, t.Dropped, t.FastBurn, t.SlowBurn,
			100*t.StackCoverage, alertSummary(t.Alerts))
	}
	return tw.Flush()
}

// alertSummary compresses a tenant's firing alerts into one cell.
func alertSummary(alerts []adminapi.SLOAlert) string {
	if len(alerts) == 0 {
		return "-"
	}
	s := ""
	for i, a := range alerts {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%s(burn %.1f)", a.Window, a.Burn)
	}
	return s
}

// runSLOTenant renders one tenant's /slo/{vni} view with its history.
func runSLOTenant(w io.Writer, admin string, vni uint32) error {
	var tr adminapi.SLOTenantResponse
	if err := getJSON(admin, "/slo/"+strconv.FormatUint(uint64(vni), 10), nil, &tr); err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(w, tr)
	}
	if !tr.Enabled {
		fmt.Fprintln(w, "slo: not enabled on this daemon")
		return nil
	}
	if !tr.Found {
		fmt.Fprintf(w, "slo: VNI %d is not tracked\n", vni)
		return nil
	}
	t := tr.Tenant
	fmt.Fprintf(w, "VNI %d: %d attempted, %d dropped (forward %d, dpu %d, fallback %d, degraded %d)\n",
		t.VNI, t.Attempted, t.Dropped, t.Forwarded, t.DPUServed, t.Fallback, t.Degraded)
	fmt.Fprintf(w, "burn: fast %.2f (loss %.6f), slow %.2f (loss %.6f)\n",
		t.FastBurn, t.FastLossRatio, t.SlowBurn, t.SlowLossRatio)
	fmt.Fprintf(w, "coverage: stack %.2f%%, miss split dpu %.2f%% / x86 %.2f%%\n",
		100*t.StackCoverage, 100*t.DPUMissShare, 100*t.X86MissShare)
	for _, a := range t.Alerts {
		fmt.Fprintf(w, "ALERT %s: burn %.2f ≥ %.2f since %d\n", a.Window, a.Burn, a.Threshold, a.SinceNs)
	}
	if len(tr.History) == 0 {
		return nil
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  TIME-NS\tATTEMPTED\tDROPPED\tLOSS\tCOVERAGE")
	for _, h := range tr.History {
		fmt.Fprintf(tw, "  %d\t%d\t%d\t%.6f\t%.2f%%\n",
			h.TimeNs, h.Attempted, h.Dropped, h.LossRatio, 100*h.StackCoverage)
	}
	return tw.Flush()
}

// cmdEvents tails the /events ops journal. -follow keeps polling the cursor.
func cmdEvents(args []string) {
	fs := flag.NewFlagSet("events", flag.ExitOnError)
	admin := fs.String("admin", "http://127.0.0.1:9090", "sailfish-gw admin plane base URL")
	since := fs.Uint64("since", 0, "resume strictly after this sequence number")
	n := fs.Int("n", 0, "cap entries per page (0 = all retained)")
	follow := fs.Bool("follow", false, "keep polling for new entries")
	interval := fs.Duration("interval", time.Second, "poll cadence with -follow")
	fs.Parse(args)
	cursor := *since
	for {
		next, err := runEvents(os.Stdout, *admin, cursor, *n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !*follow {
			return
		}
		cursor = next
		time.Sleep(*interval)
	}
}

// runEvents fetches and renders one journal page, returning the cursor to
// resume from (the last sequence seen, or since when the page was empty).
func runEvents(w io.Writer, admin string, since uint64, n int) (uint64, error) {
	q := url.Values{}
	if since > 0 {
		q.Set("since", strconv.FormatUint(since, 10))
	}
	if n > 0 {
		q.Set("n", strconv.Itoa(n))
	}
	var er adminapi.EventsResponse
	if err := getJSON(admin, "/events", q, &er); err != nil {
		return since, err
	}
	cursor := since
	for _, e := range er.Events {
		cursor = e.Seq
	}
	if jsonOut {
		return cursor, emitJSON(w, er)
	}
	if !er.Enabled {
		fmt.Fprintln(w, "events: no ops journal on this daemon (slo stanza off)")
		return cursor, nil
	}
	for _, e := range er.Events {
		scope := ""
		if e.VNI != 0 {
			scope = " vni " + strconv.FormatUint(uint64(e.VNI), 10)
		}
		if e.Cluster >= 0 {
			scope += " cluster " + strconv.Itoa(e.Cluster)
		}
		fmt.Fprintf(w, "%6d %d %s/%s%s: %s\n", e.Seq, e.TimeNs, e.Source, e.Kind, scope, e.Detail)
	}
	if er.Dropped > 0 && since < er.Appended-uint64(len(er.Events)) {
		fmt.Fprintf(w, "(journal evicted %d entries; oldest retained shown)\n", er.Dropped)
	}
	return cursor, nil
}
