package main

import (
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"

	"sailfish/internal/adminapi"
	"sailfish/internal/snat"
	"sailfish/internal/tables"
)

// TestRunSNAT renders the survivability view from a real service — sessions
// created, synced to the standby, then a failover — through the real HTTP
// client.
func TestRunSNAT(t *testing.T) {
	svc := snat.NewService(snat.ServiceConfig{Store: snat.Config{
		PublicIPs: []netip.Addr{netip.MustParseAddr("203.0.113.10")},
		Shards:    4,
	}})
	now := time.Unix(0, 0)
	for i := uint32(0); i < 50; i++ {
		k := tables.SNATKey{}
		k.VNI = 300
		k.Flow.Src = netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)})
		k.Flow.Dst = netip.MustParseAddr("93.184.216.34")
		k.Flow.SrcPort = uint16(2000 + i)
		k.Flow.DstPort = 443
		if _, err := svc.Active().Translate(k, now); err != nil {
			t.Fatal(err)
		}
	}
	svc.Sync(now)
	svc.Failover()

	mux := http.NewServeMux()
	mux.HandleFunc("/snat", func(w http.ResponseWriter, r *http.Request) {
		writeBody(t, w, adminapi.BuildSNAT(svc))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var b strings.Builder
	if err := runSNAT(&b, srv.URL, true); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"serving side: backup (promoted standby)",
		"sessions: 50 live",
		"preserved 50, orphaned 0",
		"SHARD",
		"PORT-CAP",
		"replication: lag",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("snat output missing %q:\n%s", want, out)
		}
	}
}
