package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strconv"
	"strings"
	"testing"

	"sailfish/internal/adminapi"
	"sailfish/internal/heavyhitter"
	"sailfish/internal/netpkt"
	"sailfish/internal/trace"
)

// fakeAdmin serves a canned admin plane built from real recorder/tracker
// state, so the client renders exactly what a live daemon would produce.
func fakeAdmin(t *testing.T) *httptest.Server {
	t.Helper()
	rec := trace.New(trace.Config{Shards: 1, SlotsPerShard: 64, SampleShift: 4})
	rec.SetReasonNames(trace.StageGateway, []string{"parse_error", "meter_exceeded"})
	dev := rec.InternDevice("xgwh-0")
	rec.Record(trace.Event{TimeNs: 100, FlowHash: 0xabc, VNI: 100, Dev: dev,
		Stage: trace.StageGateway, Verdict: trace.VerdictForward})
	rec.Record(trace.Event{TimeNs: 200, FlowHash: 0xdef, VNI: 101, Dev: dev,
		Stage: trace.StageGateway, Verdict: trace.VerdictDrop, Code: 1})

	hh := heavyhitter.NewTracker(16)
	dip := netip.MustParseAddr("192.168.10.3")
	for i := 0; i < 90; i++ {
		hh.Observe(0, 100, 0xabc, dip, 100)
	}
	for i := 0; i < 10; i++ {
		hh.Observe(0, 101, 0xdef, netip.MustParseAddr("192.168.11.4"), 100)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/topk", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeBody(t, w, adminapi.BuildTopK(hh, 0.95, 10))
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		var f trace.Filter
		if r.URL.Query().Get("drops") == "1" {
			f.DropsOnly = true
		}
		if v := r.URL.Query().Get("vni"); v != "" {
			u, err := strconv.ParseUint(v, 10, 32)
			if err != nil {
				t.Errorf("bad vni %q", v)
			}
			f.MatchVNI, f.VNI = true, netpkt.VNI(u)
		}
		writeBody(t, w, adminapi.BuildTrace(rec, f))
	})
	mux.HandleFunc("/debug/trace/drops", func(w http.ResponseWriter, r *http.Request) {
		writeBody(t, w, adminapi.BuildDrops(rec))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func writeBody(t *testing.T, w http.ResponseWriter, v any) {
	t.Helper()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		t.Fatal(err)
	}
}

// TestRunTop renders the heavy-hitter view through the real HTTP client.
func TestRunTop(t *testing.T) {
	srv := fakeAdmin(t)
	var b strings.Builder
	if err := runTop(&b, srv.URL, 0.95, 10); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"observed packets: 100",
		"192.168.10.3",
		"0x0000000000000abc",
		"90.00%",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("top output missing %q:\n%s", want, out)
		}
	}
}

// TestRunTrace renders events and the drops tally.
func TestRunTrace(t *testing.T) {
	srv := fakeAdmin(t)
	var b strings.Builder
	if err := runTrace(&b, srv.URL, "", 0, false, 0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"2 events (forward sampling 1-in-16; drops always captured)",
		"xgwh-0",
		"forward",
		"parse_error",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace output missing %q:\n%s", want, out)
		}
	}

	b.Reset()
	if err := runTraceDrops(&b, srv.URL); err != nil {
		t.Fatal(err)
	}
	if out := b.String(); !strings.Contains(out, "gateway") || !strings.Contains(out, "parse_error") {
		t.Fatalf("drops output missing tally:\n%s", out)
	}
}

// TestRunTraceBadServer surfaces non-200s as errors.
func TestRunTraceBadServer(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	}))
	defer srv.Close()
	if err := runTrace(&strings.Builder{}, srv.URL, "zzz", 0, false, 0); err == nil {
		t.Fatal("bad status not surfaced")
	}
}

// TestRunPlacement renders the residency-loop view, enabled and not.
func TestRunPlacement(t *testing.T) {
	resp := adminapi.PlacementResponse{
		Enabled:        true,
		PromoteShare:   0.0005,
		DemoteShare:    0.000125,
		CoverageTarget: 0.95,
		ChurnBudget:    64,
		Last: adminapi.PlacementCycle{
			Cycle: 7, Promoted: 3, Demoted: 1, DeferredChurn: 2,
			ResidentKeys: 12, ResidentEntries: 24, DesiredEntries: 404,
			HardwareShare: 0.9991,
		},
		Totals: adminapi.PlacementTotals{Cycles: 7, Promotions: 15, Demotions: 3, DeferredChurn: 4},
		Resident: []adminapi.PlacementEntry{
			{VNI: 100, DIP: "192.168.10.3", Cluster: 0, Share: 0.42, ResidentAtNs: 1000},
		},
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/placement" {
			http.NotFound(w, r)
			return
		}
		writeBody(t, w, resp)
	}))
	defer srv.Close()

	var b strings.Builder
	if err := runPlacement(&b, srv.URL); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"churn budget 64/cycle",
		"cycle 7: +3/-1 hw moves",
		"12 keys, 24/404 hardware entries, ~99.91% of traffic",
		"15 promotions, 3 demotions",
		"192.168.10.3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("placement output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "dpu:") {
		t.Fatalf("two-tier view must not render the dpu lines:\n%s", out)
	}

	// The three-tier ladder adds the warm-rung policy, cycle, and coverage
	// lines plus the TIER column.
	resp.Ladder = true
	resp.WarmShare = 0.0005 / 8
	resp.WarmDemoteShare = 0.0005 / 32
	resp.DPUChurnBudget = 64
	resp.Last.PromotedDPU, resp.Last.DemotedDPU = 5, 2
	resp.Last.Cascaded, resp.Last.Upgraded = 1, 1
	resp.Last.DPUResidentKeys, resp.Last.DPUShare, resp.Last.StackShare = 40, 0.0008, 0.9999
	resp.Totals.PromotionsDPU, resp.Totals.DemotionsDPU = 9, 4
	resp.Totals.Cascades, resp.Totals.Upgrades = 2, 3
	resp.Resident = append(resp.Resident, adminapi.PlacementEntry{
		VNI: 100, DIP: "192.168.10.7", Cluster: 0, Tier: "dpu", Share: 0.0001, ResidentAtNs: 2000,
	})
	b.Reset()
	if err := runPlacement(&b, srv.URL); err != nil {
		t.Fatal(err)
	}
	out = b.String()
	for _, want := range []string{
		"dpu churn budget 64/cycle",
		"dpu: +5/-2 moves, 1 cascaded down, 1 upgraded up",
		"warm: 40 dpu keys",
		"stack serves ~99.99%",
		"9 promotions, 4 demotions, 2 cascades, 3 upgrades",
		"192.168.10.7",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("ladder output missing %q:\n%s", want, out)
		}
	}

	resp.Enabled = false
	b.Reset()
	if err := runPlacement(&b, srv.URL); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "not enabled") {
		t.Fatalf("disabled loop not reported:\n%s", b.String())
	}
}
