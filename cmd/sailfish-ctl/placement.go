package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"sailfish/internal/adminapi"
)

// cmdPlacement fetches and renders a daemon's residency-loop view
// (/placement): the effective policy, the last cycle's report, lifetime
// totals and the promoted set.
func cmdPlacement(args []string) {
	fs := flag.NewFlagSet("placement", flag.ExitOnError)
	admin := fs.String("admin", "http://127.0.0.1:9090", "sailfish-gw admin plane base URL")
	fs.Parse(args)
	if err := runPlacement(os.Stdout, *admin); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func runPlacement(w io.Writer, admin string) error {
	var p adminapi.PlacementResponse
	if err := getJSON(admin, "/placement", nil, &p); err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(w, p)
	}
	if !p.Enabled {
		fmt.Fprintln(w, "placement: not enabled on this daemon")
		return nil
	}
	// Render the DPU lines only when the daemon runs the three-tier
	// ladder, so two-tier boxes keep their familiar view.
	ladder := p.Ladder
	fmt.Fprintf(w, "policy: promote ≥%.4f%% share, demote <%.4f%%, coverage target %.1f%%, churn budget %d/cycle\n",
		100*p.PromoteShare, 100*p.DemoteShare, 100*p.CoverageTarget, p.ChurnBudget)
	if ladder {
		fmt.Fprintf(w, "ladder: warm ≥%.4f%% share → dpu, warm-demote <%.4f%%, dpu churn budget %d/cycle\n",
			100*p.WarmShare, 100*p.WarmDemoteShare, p.DPUChurnBudget)
	}
	l := p.Last
	suffix := ""
	if l.EmptyWindow {
		suffix = " [empty window: no-op]"
	}
	fmt.Fprintf(w, "cycle %d: +%d/-%d hw moves (deferred: churn %d, capacity %d; failed %d)%s\n",
		l.Cycle, l.Promoted, l.Demoted, l.DeferredChurn, l.DeferredCapacity, l.Failed, suffix)
	if ladder {
		fmt.Fprintf(w, "  dpu: +%d/-%d moves, %d cascaded down, %d upgraded up (deferred: churn %d, capacity %d)\n",
			l.PromotedDPU, l.DemotedDPU, l.Cascaded, l.Upgraded, l.DeferredChurnDPU, l.DeferredCapacityDPU)
	}
	fmt.Fprintf(w, "resident: %d keys, %d/%d hardware entries, ~%.2f%% of traffic\n",
		l.ResidentKeys, l.ResidentEntries, l.DesiredEntries, 100*l.HardwareShare)
	if ladder {
		fmt.Fprintf(w, "  warm: %d dpu keys, ~%.2f%% of traffic; stack serves ~%.2f%%\n",
			l.DPUResidentKeys, 100*l.DPUShare, 100*l.StackShare)
	}
	t := p.Totals
	fmt.Fprintf(w, "lifetime: %d cycles (%d empty), %d promotions, %d demotions, %d deferred (churn), %d deferred (capacity), %d failures\n",
		t.Cycles, t.EmptyWindows, t.Promotions, t.Demotions, t.DeferredChurn, t.DeferredCapacity, t.Failures)
	if ladder {
		fmt.Fprintf(w, "  dpu lifetime: %d promotions, %d demotions, %d cascades, %d upgrades, %d deferred (churn), %d deferred (capacity)\n",
			t.PromotionsDPU, t.DemotionsDPU, t.Cascades, t.Upgrades, t.DeferredChurnDPU, t.DeferredCapacityDPU)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  VNI\tDIP\tCLUSTER\tTIER\tSHARE\tRESIDENT-AT-NS")
	for _, e := range p.Resident {
		fmt.Fprintf(tw, "  %d\t%s\t%d\t%s\t%.4f%%\t%d\n", e.VNI, e.DIP, e.Cluster, e.Tier, 100*e.Share, e.ResidentAtNs)
	}
	return tw.Flush()
}
