package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"sailfish/internal/adminapi"
)

// cmdPlacement fetches and renders a daemon's residency-loop view
// (/placement): the effective policy, the last cycle's report, lifetime
// totals and the promoted set.
func cmdPlacement(args []string) {
	fs := flag.NewFlagSet("placement", flag.ExitOnError)
	admin := fs.String("admin", "http://127.0.0.1:9090", "sailfish-gw admin plane base URL")
	fs.Parse(args)
	if err := runPlacement(os.Stdout, *admin); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func runPlacement(w io.Writer, admin string) error {
	var p adminapi.PlacementResponse
	if err := getJSON(admin, "/placement", nil, &p); err != nil {
		return err
	}
	if !p.Enabled {
		fmt.Fprintln(w, "placement: not enabled on this daemon")
		return nil
	}
	fmt.Fprintf(w, "policy: promote ≥%.4f%% share, demote <%.4f%%, coverage target %.1f%%, churn budget %d/cycle\n",
		100*p.PromoteShare, 100*p.DemoteShare, 100*p.CoverageTarget, p.ChurnBudget)
	l := p.Last
	fmt.Fprintf(w, "cycle %d: +%d/-%d moves (deferred: churn %d, capacity %d; failed %d)\n",
		l.Cycle, l.Promoted, l.Demoted, l.DeferredChurn, l.DeferredCapacity, l.Failed)
	fmt.Fprintf(w, "resident: %d keys, %d/%d hardware entries, ~%.2f%% of traffic\n",
		l.ResidentKeys, l.ResidentEntries, l.DesiredEntries, 100*l.HardwareShare)
	t := p.Totals
	fmt.Fprintf(w, "lifetime: %d cycles, %d promotions, %d demotions, %d deferred (churn), %d deferred (capacity), %d failures\n",
		t.Cycles, t.Promotions, t.Demotions, t.DeferredChurn, t.DeferredCapacity, t.Failures)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  VNI\tDIP\tCLUSTER\tSHARE\tRESIDENT-AT-NS")
	for _, e := range p.Resident {
		fmt.Fprintf(tw, "  %d\t%s\t%d\t%.4f%%\t%d\n", e.VNI, e.DIP, e.Cluster, 100*e.Share, e.ResidentAtNs)
	}
	return tw.Flush()
}
