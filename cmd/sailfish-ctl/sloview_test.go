package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sailfish/internal/adminapi"
	"sailfish/internal/slo"
)

// fakeSLOAdmin serves /slo, /slo/{vni} and /events from a real engine and
// journal, so the client renders exactly what a live daemon would produce.
func fakeSLOAdmin(t *testing.T) (*httptest.Server, *slo.Engine, *slo.Journal) {
	t.Helper()
	col := slo.NewCollector()
	col.Track(100)
	col.Track(200)
	j := slo.NewJournal(64)
	eng := slo.NewEngine(slo.Config{FastWindow: 10 * time.Second}, col, j)

	// Tenant 100 burns hard, tenant 200 stays green. Two ticks past the
	// arming horizon so the fast alert fires and journals.
	t0 := time.Unix(1000, 0)
	for s := 1; s <= 12; s++ {
		for i := 0; i < 1000; i++ {
			col.Forward(100)
			col.Forward(200)
		}
		eng.Tick(t0.Add(time.Duration(s) * time.Second))
	}
	for s := 13; s <= 14; s++ {
		for i := 0; i < 500; i++ {
			col.Forward(100)
			col.Drop(100)
			col.Forward(200)
			col.Forward(200)
		}
		eng.Tick(t0.Add(time.Duration(s) * time.Second))
	}
	j.Append(slo.Entry{TimeNs: 99, Source: "placement", Kind: "promote", VNI: 100, Cluster: 0, Detail: "192.168.10.3 share 0.4"})

	mux := http.NewServeMux()
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		writeBody(t, w, adminapi.BuildSLO(eng))
	})
	mux.HandleFunc("/slo/", func(w http.ResponseWriter, r *http.Request) {
		writeBody(t, w, adminapi.BuildSLOTenant(eng, 100))
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		writeBody(t, w, adminapi.BuildEvents(j, 0, 0))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, eng, j
}

// TestRunSLO renders the per-tenant burn view through the real HTTP client.
func TestRunSLO(t *testing.T) {
	srv, _, _ := fakeSLOAdmin(t)
	var b strings.Builder
	if err := runSLO(&b, srv.URL); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"loss budget 0.0200%",
		"alerts firing: 1",
		"fast(burn", // tenant 100's alert cell
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("slo output missing %q:\n%s", want, out)
		}
	}
	// Tenant 200 never dropped: its alert cell is the dash.
	if !strings.Contains(out, "\t-") && !strings.Contains(out, "  -") {
		t.Fatalf("green tenant not rendered quiet:\n%s", out)
	}
}

// TestRunSLOTenant renders one tenant's history view.
func TestRunSLOTenant(t *testing.T) {
	srv, _, _ := fakeSLOAdmin(t)
	var b strings.Builder
	if err := runSLOTenant(&b, srv.URL, 100); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"VNI 100:", "ALERT fast:", "TIME-NS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("slo tenant output missing %q:\n%s", want, out)
		}
	}
}

// TestRunEvents renders the journal tail and advances the cursor.
func TestRunEvents(t *testing.T) {
	srv, _, j := fakeSLOAdmin(t)
	var b strings.Builder
	cursor, err := runEvents(&b, srv.URL, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"slo/alert_fire", "placement/promote", "vni 100"} {
		if !strings.Contains(out, want) {
			t.Fatalf("events output missing %q:\n%s", want, out)
		}
	}
	if cursor != j.LastSeq() {
		t.Fatalf("cursor = %d, want last seq %d", cursor, j.LastSeq())
	}
}

// TestJSONFlag: --json emits the raw DTO for the proxy subcommands.
func TestJSONFlag(t *testing.T) {
	srv, _, _ := fakeSLOAdmin(t)
	jsonOut = true
	defer func() { jsonOut = false }()

	var b strings.Builder
	if err := runSLO(&b, srv.URL); err != nil {
		t.Fatal(err)
	}
	var sr adminapi.SLOResponse
	if err := json.Unmarshal([]byte(b.String()), &sr); err != nil {
		t.Fatalf("slo --json output is not the DTO: %v\n%s", err, b.String())
	}
	if !sr.Enabled || len(sr.Tenants) != 2 {
		t.Fatalf("decoded DTO = %+v", sr)
	}

	b.Reset()
	if _, err := runEvents(&b, srv.URL, 0, 0); err != nil {
		t.Fatal(err)
	}
	var er adminapi.EventsResponse
	if err := json.Unmarshal([]byte(b.String()), &er); err != nil {
		t.Fatalf("events --json output is not the DTO: %v\n%s", err, b.String())
	}
	if len(er.Events) == 0 {
		t.Fatal("events DTO empty")
	}
}

// TestStripJSONFlag removes the flag from any position.
func TestStripJSONFlag(t *testing.T) {
	defer func() { jsonOut = false }()
	jsonOut = false
	got := stripJSONFlag([]string{"slo", "--json", "-admin", "http://x"})
	if jsonOut != true || len(got) != 3 || got[0] != "slo" || got[1] != "-admin" {
		t.Fatalf("strip = %v jsonOut=%v", got, jsonOut)
	}
	jsonOut = false
	got = stripJSONFlag([]string{"plan", "-tenants", "4"})
	if jsonOut || len(got) != 3 {
		t.Fatalf("strip = %v jsonOut=%v", got, jsonOut)
	}
}
