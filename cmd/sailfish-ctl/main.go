// Command sailfish-ctl exercises the Sailfish control plane from the
// command line: tenant placement across clusters (horizontal table
// splitting), chip layout planning under the §4.4 optimizations, and the
// table-update stream model.
//
// Subcommands:
//
//	sailfish-ctl plan    -tenants 64 -vms 32 -capacity 2000
//	sailfish-ctl layout  -opts a,b,c,d,e
//	sailfish-ctl updates -days 30 -seed 2
//	sailfish-ctl top     -admin http://127.0.0.1:9090 -coverage 0.95
//	sailfish-ctl trace   -admin http://127.0.0.1:9090 -drops
//	sailfish-ctl snat    -admin http://127.0.0.1:9090
//	sailfish-ctl slo     -admin http://127.0.0.1:9090 [vni]
//	sailfish-ctl events  -admin http://127.0.0.1:9090 -follow
//
// The global --json flag (any position) makes the admin-proxy subcommands
// (slo, events, placement, snat) emit the raw adminapi DTO instead of the
// rendered view, for scripting.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sailfish/internal/cluster"
	"sailfish/internal/controller"
	"sailfish/internal/tofino"
	"sailfish/internal/traffic"
	"sailfish/internal/xgwh"
)

// jsonOut is the global --json flag: admin-proxy subcommands emit the raw
// wire DTO instead of the rendered view. Stripped before dispatch so it works
// in any argv position.
var jsonOut bool

// stripJSONFlag removes --json/-json from args, flipping jsonOut.
func stripJSONFlag(args []string) []string {
	out := make([]string, 0, len(args))
	for _, a := range args {
		if a == "--json" || a == "-json" {
			jsonOut = true
			continue
		}
		out = append(out, a)
	}
	return out
}

func main() {
	args := stripJSONFlag(os.Args[1:])
	if len(args) < 1 {
		usage()
	}
	switch args[0] {
	case "plan":
		cmdPlan(args[1:])
	case "layout":
		cmdLayout(args[1:])
	case "updates":
		cmdUpdates(args[1:])
	case "rebalance":
		cmdRebalance(args[1:])
	case "export":
		cmdExport(args[1:])
	case "top":
		cmdTop(args[1:])
	case "trace":
		cmdTrace(args[1:])
	case "placement":
		cmdPlacement(args[1:])
	case "snat":
		cmdSNAT(args[1:])
	case "slo":
		cmdSLO(args[1:])
	case "events":
		cmdEvents(args[1:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sailfish-ctl [--json] {plan|layout|updates|rebalance|export|top|trace|placement|snat|slo|events} [flags]")
	os.Exit(2)
}

// cmdPlan places generated tenants across clusters and reports the split.
func cmdPlan(args []string) {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	tenants := fs.Int("tenants", 64, "tenants to place")
	vms := fs.Int("vms", 32, "VMs per tenant")
	capacity := fs.Int("capacity", 2000, "per-node entry capacity")
	water := fs.Float64("water", 0.8, "safe water level")
	fs.Parse(args)

	cfg := cluster.DefaultConfig()
	cfg.NodesPerCluster = 2
	cfg.EntryCapacity = *capacity
	region := cluster.NewRegion(cfg, 1, 0)
	ctl := controller.New(controller.Config{SafeWaterLevel: *water, AutoExpand: true}, region)

	tcfg := traffic.DefaultConfig()
	tcfg.Tenants = *tenants
	tcfg.VMsPerTenant = *vms
	gen := traffic.NewGenerator(tcfg)

	perCluster := map[int]int{}
	for _, t := range gen.Tenants() {
		id, err := ctl.PlaceTenant(controller.FromTrafficTenant(t))
		if err != nil {
			fmt.Fprintf(os.Stderr, "place %v: %v\n", t.VNI, err)
			os.Exit(1)
		}
		perCluster[id]++
	}
	fmt.Printf("placed %d tenants (%d entries each) across %d clusters:\n",
		*tenants, *vms+1, len(region.Clusters))
	for id, c := range region.Clusters {
		rep := ctl.CheckConsistency(id)
		status := "consistent"
		if !rep.Consistent {
			status = "INCONSISTENT: " + strings.Join(rep.Mismatches, ",")
		}
		fmt.Printf("  cluster %d: %3d tenants, %6d entries, water level %.0f%%, %s\n",
			id, perCluster[id], c.EntryCount(), 100*c.WaterLevel(), status)
	}
	if ctl.SaleOpen() {
		fmt.Println("sale: open")
	} else {
		fmt.Println("sale: closed (all clusters above safe water level)")
	}
}

// cmdLayout prints the chip layout under chosen optimizations.
func cmdLayout(args []string) {
	fs := flag.NewFlagSet("layout", flag.ExitOnError)
	opts := fs.String("opts", "a,b,c,d,e", "optimizations to apply (comma list of a..f, or 'none')")
	full := fs.Bool("full", false, "include service tables (Table 4 workload)")
	fs.Parse(args)

	var o xgwh.Optimizations
	if *opts != "none" {
		for _, s := range strings.Split(*opts, ",") {
			switch strings.TrimSpace(s) {
			case "a":
				o.Folding = true
			case "b":
				o.SplitPipes = true
			case "c":
				o.Pooling = true
			case "d":
				o.Compression = true
			case "e":
				o.ALPM = true
			case "f":
				o.TiledLPM = true
			default:
				fmt.Fprintf(os.Stderr, "unknown optimization %q\n", s)
				os.Exit(2)
			}
		}
	}
	w := xgwh.MajorTableWorkload()
	if *full {
		w = xgwh.FullWorkload()
	}
	l, err := xgwh.Plan(tofino.DefaultChip(), w, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(l.String())
	rep := l.Occupancy()
	fmt.Printf("occupancy: P0/2 %.1f%% SRAM %.1f%% TCAM | P1/3 %.1f%% SRAM %.1f%% TCAM | total %.1f%% / %.1f%%\n",
		rep.EvenSRAMPct, rep.EvenTCAMPct, rep.OddSRAMPct, rep.OddTCAMPct, rep.TotalSRAMPct, rep.TotalTCAMPct)
	if l.Feasible() {
		fmt.Println("layout: FITS")
	} else {
		fmt.Println("layout: DOES NOT FIT")
		for _, p := range l.Problems() {
			fmt.Println("  -", p)
		}
	}
}

// cmdUpdates prints a Fig. 23-style table-update stream.
func cmdUpdates(args []string) {
	fs := flag.NewFlagSet("updates", flag.ExitOnError)
	days := fs.Int("days", 30, "days to simulate")
	seed := fs.Int64("seed", 2, "random seed")
	fs.Parse(args)

	cfg := controller.DefaultUpdateStreamConfig()
	cfg.Days = *days
	cfg.Seed = *seed
	pts := controller.SimulateUpdateStream(cfg)
	for _, p := range pts {
		bar := strings.Repeat("#", p.Entries/25_000)
		fmt.Printf("day %2d %8d %s\n", p.Day, p.Entries, bar)
	}
	fmt.Printf("sudden updates (≥%d new entries) on days %v\n",
		cfg.BurstEntries, controller.BurstDays(pts, cfg.BurstEntries))
}

// cmdRebalance demonstrates live tenant migration with incremental traffic
// admission (§4.3 load shedding + §6.1 incremental admission): cluster 0 is
// drained for maintenance by migrating each of its tenants to cluster 1
// through make-before-break ramp steps.
func cmdRebalance(args []string) {
	fs := flag.NewFlagSet("rebalance", flag.ExitOnError)
	tenants := fs.Int("tenants", 16, "tenants to place")
	vms := fs.Int("vms", 16, "VMs per tenant")
	fs.Parse(args)

	cfg := cluster.DefaultConfig()
	cfg.NodesPerCluster = 2
	region := cluster.NewRegion(cfg, 2, 0)
	ctl := controller.New(controller.DefaultConfig(), region)

	tcfg := traffic.DefaultConfig()
	tcfg.Tenants = *tenants
	tcfg.VMsPerTenant = *vms
	gen := traffic.NewGenerator(tcfg)

	var placed []controller.TenantEntries
	for _, t := range gen.Tenants() {
		te := controller.FromTrafficTenant(t)
		if _, err := ctl.PlaceTenant(te); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		placed = append(placed, te)
	}
	fmt.Printf("before: cluster entries %d / %d\n",
		region.Clusters[0].EntryCount(), region.Clusters[1].EntryCount())

	fmt.Println("draining cluster 0 for maintenance...")
	for _, te := range placed {
		if from, _ := ctl.ClusterOf(te.VNI); from != 0 {
			continue
		}
		if err := ctl.StartMigration(te.VNI, 1); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, pm := range []int{250, 500, 750} {
			if err := ctl.AdvanceMigration(te.VNI, pm); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if err := ctl.FinishMigration(te.VNI); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  migrated %v (%d entries) ramped 25/50/75/100%%\n", te.VNI, te.Size())
	}
	fmt.Printf("after:  cluster entries %d / %d — cluster 0 is empty and safe to service\n",
		region.Clusters[0].EntryCount(), region.Clusters[1].EntryCount())
}

// cmdExport places generated tenants, exports the controller database as
// JSON (the durable state a region rebuild replays), and verifies the
// snapshot restores into a fresh region.
func cmdExport(args []string) {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	tenants := fs.Int("tenants", 8, "tenants to place")
	vms := fs.Int("vms", 4, "VMs per tenant")
	verify := fs.Bool("verify", true, "restore into a fresh region and check consistency")
	fs.Parse(args)

	cfg := cluster.DefaultConfig()
	cfg.NodesPerCluster = 2
	region := cluster.NewRegion(cfg, 2, 0)
	ctl := controller.New(controller.DefaultConfig(), region)
	tcfg := traffic.DefaultConfig()
	tcfg.Tenants = *tenants
	tcfg.VMsPerTenant = *vms
	for _, t := range traffic.NewGenerator(tcfg).Tenants() {
		if _, err := ctl.PlaceTenant(controller.FromTrafficTenant(t)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	data, err := ctl.ExportJSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
	if *verify {
		fresh := cluster.NewRegion(cfg, 1, 0)
		ctl2 := controller.New(controller.DefaultConfig(), fresh)
		if err := ctl2.RestoreJSON(data); err != nil {
			fmt.Fprintln(os.Stderr, "restore failed:", err)
			os.Exit(1)
		}
		for id := range fresh.Clusters {
			if rep := ctl2.CheckConsistency(id); !rep.Consistent {
				fmt.Fprintf(os.Stderr, "cluster %d inconsistent after restore\n", id)
				os.Exit(1)
			}
		}
		fmt.Fprintf(os.Stderr, "verified: snapshot restores into %d clusters, consistent\n", len(fresh.Clusters))
	}
}
