package main

// The lpm/* rows compare the two hardware LPM backends — ALPM buckets
// (internal/alpm) and MashUp tiles (internal/mashup) — on the same route
// databases: a uniform synthetic FIB and a Zipf-skewed one where a few /16
// subtrees hold most routes, the shape a multi-tenant gateway actually
// carries. Each row bulk-loads the database, records the resulting
// TCAM/SRAM occupancy in the tcam_entries/sram_slots columns, then times
// steady-state update churn (one delete + one re-insert per op) — the
// Fig. 23 concern: route updates must stay cheap at full table scale. The
// run exits non-zero if MashUp does not beat ALPM on TCAM rows at equal
// route count, which is the structure's reason to exist.

import (
	"fmt"
	"math/rand"
	"net/netip"
	"os"
	"sort"
	"testing"

	"sailfish/internal/alpm"
	"sailfish/internal/mashup"
)

// lpmBench is the surface the rows drive; alpm.Table and mashup.Table both
// satisfy it.
type lpmBench interface {
	Insert(p netip.Prefix, v int) error
	Delete(p netip.Prefix) bool
	Lookup(a netip.Addr) (int, int, bool)
	Stats() alpm.Stats
	Len() int
}

// lpmRoutes generates n distinct IPv4 prefixes under 10.0.0.0/8,
// deterministic per (n, zipf). Uniform draws spread subnets evenly; the
// Zipf variant concentrates routes into few heavy /16 subtrees (s=1.2), so
// the partitioners face deep crowded regions next to nearly empty ones.
// Returned shallow-first: bulk FIB loads install covering routes before
// their more-specifics, and both structures build incrementally.
func lpmRoutes(n int, zipf bool) []netip.Prefix {
	rng := rand.New(rand.NewSource(int64(n) + 7))
	var z *rand.Zipf
	if zipf {
		z = rand.NewZipf(rng, 1.2, 1, 255)
	}
	seen := make(map[netip.Prefix]bool, n)
	out := make([]netip.Prefix, 0, n)
	for len(out) < n {
		var b [4]byte
		rng.Read(b[:])
		b[0] = 10
		if z != nil {
			b[1] = byte(z.Uint64())
		}
		// Mostly host and near-host routes with a covering-subnet tail,
		// like a real tenant FIB.
		plen := 32 - rng.Intn(8)
		if rng.Intn(8) == 0 {
			plen = 9 + rng.Intn(15)
		}
		p := netip.PrefixFrom(netip.AddrFrom4(b), plen).Masked()
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bits() < out[j].Bits() })
	return out
}

func lpmScale(n int) string {
	if n >= 1_000_000 {
		return fmt.Sprintf("%dm", n/1_000_000)
	}
	return fmt.Sprintf("%dk", n/1_000)
}

// benchLPMChurn loads the database into t, snapshots occupancy, and times
// delete+re-insert churn cycling through the whole table, so updates hit
// every region of the structure, splits and merges included.
func benchLPMChurn(name string, t lpmBench, routes []netip.Prefix, note string) entry {
	for i, p := range routes {
		if err := t.Insert(p, i); err != nil {
			panic(err)
		}
	}
	st := t.Stats()
	cursor := 0
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			p := routes[cursor]
			if !t.Delete(p) {
				b.Fatalf("lost route %v", p)
			}
			if err := t.Insert(p, cursor); err != nil {
				b.Fatal(err)
			}
			if cursor++; cursor == len(routes) {
				cursor = 0
			}
		}
	})
	if t.Len() != len(routes) {
		fmt.Fprintf(os.Stderr, "FAIL: %s: %d routes after churn, want %d\n", name, t.Len(), len(routes))
		os.Exit(1)
	}
	e := toEntry(name, r, 2, fmt.Sprintf(
		"%s; %d routes, %d stored (%d replicated), %d buckets/tiles; pps column is updates/sec",
		note, len(routes), st.StoredEntries, st.Replicated, st.Buckets))
	e.TCAMEntries = st.TCAMEntries
	e.SRAMSlots = st.SRAMEntries
	return e
}

// benchLPM runs the ALPM and MashUp rows for one database and enforces the
// acceptance guard: at equal correctness (both backends carry the same
// routes), tiling must report measurably lower TCAM occupancy.
func benchLPM(n int, zipf bool) []entry {
	routes := lpmRoutes(n, zipf)
	kind, suffix := "uniform synthetic", lpmScale(n)
	if zipf {
		kind, suffix = "Zipf-skewed (s=1.2 over /16 subtrees)", "zipf-"+lpmScale(n)
	}

	at, err := alpm.Build[int](32, 16, nil)
	if err != nil {
		panic(err)
	}
	mt, err := mashup.New[int](32, mashup.DefaultTileCapacity, mashup.DefaultMaxChain)
	if err != nil {
		panic(err)
	}
	rows := []entry{
		benchLPMChurn("lpm/alpm-"+suffix, at, routes,
			kind+" FIB, ALPM cap-16 buckets"),
		benchLPMChurn("lpm/mashup-"+suffix, mt, routes,
			fmt.Sprintf("%s FIB, MashUp cap-%d tiles chain≤%d", kind, mashup.DefaultTileCapacity, mashup.DefaultMaxChain)),
	}
	if a, m := rows[0].TCAMEntries, rows[1].TCAMEntries; m*2 >= a {
		fmt.Fprintf(os.Stderr, "FAIL: %s: MashUp TCAM %d not well below ALPM TCAM %d\n", rows[1].Name, m, a)
		os.Exit(1)
	}
	// Differential spot-check at population: the structures must agree.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 10_000; i++ {
		var b [4]byte
		rng.Read(b[:])
		b[0] = 10
		a := netip.AddrFrom4(b)
		v1, l1, ok1 := at.Lookup(a)
		v2, l2, ok2 := mt.Lookup(a)
		if ok1 != ok2 || l1 != l2 || (ok1 && v1 != v2) {
			fmt.Fprintf(os.Stderr, "FAIL: lpm backends disagree at %v: (%d,%d,%v) vs (%d,%d,%v)\n",
				a, v1, l1, ok1, v2, l2, ok2)
			os.Exit(1)
		}
	}
	return rows
}
