package main

import "testing"

// Exercises the lpm/* row machinery at a trimmed scale: build both
// backends, churn, and the TCAM guard + differential spot-check inside
// benchLPM (which os.Exits on violation).
func TestLPMRowsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench machinery smoke is slow")
	}
	for _, zipf := range []bool{false, true} {
		rows := benchLPM(20_000, zipf)
		if len(rows) != 2 {
			t.Fatalf("got %d rows", len(rows))
		}
		for _, e := range rows {
			if e.TCAMEntries == 0 || e.SRAMSlots == 0 || e.NsPerOp <= 0 {
				t.Fatalf("row %s missing occupancy/timing: %+v", e.Name, e)
			}
		}
		if rows[1].TCAMEntries >= rows[0].TCAMEntries {
			t.Fatalf("mashup TCAM %d not below alpm %d", rows[1].TCAMEntries, rows[0].TCAMEntries)
		}
	}
}
