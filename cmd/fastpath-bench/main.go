// Command fastpath-bench measures the software data plane's fast path and
// writes the numbers to a JSON file (default BENCH_fastpath.json) so the
// repository carries its current performance envelope alongside the code.
//
// Five benchmarks run, via testing.Benchmark so the output needs no
// go-test parsing:
//
//   - region/forward: single-shot Region.ProcessPacket, the end-to-end
//     behavioral fast path (steering → ECMP → folded XGW-H → rewrite);
//   - region/forward-traced: the same single-shot path with the flight
//     recorder (1-in-64 forward sampling) and the heavy-hitter tracker
//     enabled — the delta against region/forward is the tracing overhead;
//   - region/forward-batch: the same path through Region.ProcessBatch with
//     the result slice recycled;
//   - driver/submit-batch: Driver.SubmitBatch feeding per-node worker
//     goroutines on a two-node cluster — the concurrent configuration whose
//     throughput must exceed the single-shot path;
//   - shardplane/forward-{1,2,4,8}: the multi-core sharded data plane —
//     flow-hash dispatch onto per-shard SPSC rings with one
//     run-to-completion lane per shard, GOMAXPROCS matched to the shard
//     count per row; the family's curve is the pps scaling story and each
//     row must be allocation-free;
//   - placement/cycle: one promotion/demotion cycle of the §5 residency
//     loop against the real controller while the hot set keeps shifting,
//     so every timed cycle pays a full churn budget of table moves;
//   - slo/evaluate: one SLO-engine tick over 64 tracked tenants — the
//     off-fast-path evaluator cost (snapshot every tenant's counters, push
//     the sample rings, compute both burn windows, transition alerts). The
//     pps column is tenants evaluated per second.
//
// Two SNAT rows measure the survivable session store (§4.2, Fig. 11) at
// population, each at 1M and 10M pre-established sessions:
//
//   - snat/translate-*: the Translate hit path against the sharded store.
//     This path must stay allocation-free at any population; the run exits
//     non-zero if allocs/op is not 0, which is the bench-smoke regression
//     guard for the fast path.
//   - snat/replicate-*: the full delta pipeline — journal a batch of
//     refresh deltas, then one Sync round copying and applying them to the
//     standby; the pps column is deltas/second.
//
// A separate instrumented pass (not a benchmark: the per-stage clock reads
// would distort the ns/op rows above) attaches the stage latency histograms
// and reports p50/p99 per stage in stage_latencies_ns.
//
// For regression hunting, prefer benchstat over eyeballing this file:
//
//	go test -run '^$' -bench BenchmarkRegionForward -benchmem -count 10 . > old.txt
//	... apply change ...
//	go test -run '^$' -bench BenchmarkRegionForward -benchmem -count 10 . > new.txt
//	benchstat old.txt new.txt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/netip"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	sailfish "sailfish"
	"sailfish/internal/cluster"
	"sailfish/internal/heavyhitter"
	"sailfish/internal/metrics"
	"sailfish/internal/netpkt"
	"sailfish/internal/placement"
	"sailfish/internal/shardplane"
	"sailfish/internal/slo"
	"sailfish/internal/snat"
	"sailfish/internal/tables"
	"sailfish/internal/trace"
)

type entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Pps is packets per second implied by NsPerOp (ops may batch several
	// packets; the conversion accounts for that).
	Pps  float64 `json:"pps"`
	Note string  `json:"note,omitempty"`
	// TCAMEntries/SRAMSlots record the structure's occupancy for rows that
	// measure a memory shape rather than a packet path (the lpm/* rows):
	// TCAM pivot rows and allocated SRAM slots after the build.
	TCAMEntries int `json:"tcam_entries,omitempty"`
	SRAMSlots   int `json:"sram_slots,omitempty"`
}

// stageQuantile is one row of the per-stage latency profile: nearest-rank
// p50/p99 estimates read from the PR 3 AtomicHistogram buckets, so the
// values are bucket upper bounds, not exact sample quantiles.
type stageQuantile struct {
	Stage   string  `json:"stage"`
	Samples uint64  `json:"samples"`
	P50Ns   float64 `json:"p50_ns"`
	P99Ns   float64 `json:"p99_ns"`
}

type report struct {
	// Baselines are frozen pre-optimization numbers kept for comparison:
	// they are inputs to this file, not measured by this run.
	Baselines []entry `json:"baselines"`
	// Results are measured on the machine that ran `make bench`.
	Results []entry `json:"results"`
	// StageLatencies profiles the forward path with stage histograms
	// attached (steer in the region front end; parse/pipeline/rewrite
	// inside the gateway). Measured in a dedicated instrumented pass.
	StageLatencies []stageQuantile `json:"stage_latencies_ns"`
	GoMaxProcs     int             `json:"gomaxprocs"`
	GoVersion      string          `json:"go_version"`
	GeneratedBy    string          `json:"generated_by"`
}

const batchSize = 64

var benchTime = time.Unix(0, 0)

func newDeployment(nodes int) (*sailfish.Deployment, [][]byte) {
	d := sailfish.NewDeployment(sailfish.Options{Clusters: 1, NodesPerCluster: nodes, FallbackNodes: 0})
	vm1 := netip.MustParseAddr("192.168.10.2")
	vm2 := netip.MustParseAddr("192.168.10.3")
	if _, err := d.AddTenant(sailfish.Tenant{
		VNI:    100,
		Prefix: netip.MustParsePrefix("192.168.10.0/24"),
		VMs: map[netip.Addr]netip.Addr{
			vm1: netip.MustParseAddr("10.1.1.11"),
			vm2: netip.MustParseAddr("10.1.1.12"),
		},
	}); err != nil {
		panic(err)
	}
	raws := make([][]byte, batchSize)
	for i := range raws {
		raw, err := sailfish.BuildVXLAN(100, vm1, vm2, sailfish.ProtoTCP, uint16(4242+i), 80, make([]byte, 64))
		if err != nil {
			panic(err)
		}
		raws[i] = append([]byte(nil), raw...)
	}
	return d, raws
}

func toEntry(name string, r testing.BenchmarkResult, pktsPerOp int, note string) entry {
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	return entry{
		Name:        name,
		NsPerOp:     ns,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Pps:         float64(pktsPerOp) * 1e9 / ns,
		Note:        note,
	}
}

func benchSingleShot() entry {
	d, raws := newDeployment(2)
	raw := raws[0]
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := d.DeliverVXLANAt(raw, benchTime)
			if err != nil {
				b.Fatal(err)
			}
			if res.GW.Action != sailfish.ActionForward {
				b.Fatal("not forwarded")
			}
		}
	})
	return toEntry("region/forward", r, 1, "single-shot ProcessPacket, 1 cluster x 2 nodes")
}

// benchTraced repeats the single-shot benchmark with the PR 4 observability
// stack live: flight recorder at the production 1-in-64 forward sampling
// plus the SpaceSaving heavy-hitter tracker. The delta against
// region/forward is what always-on tracing costs the fast path.
func benchTraced() entry {
	d, raws := newDeployment(2)
	rec := trace.New(trace.Config{Shards: 4, SlotsPerShard: 1024, SampleShift: 6})
	d.Region.EnableTracing(rec)
	d.Region.EnableHeavyHitters(heavyhitter.NewTracker(1024))
	raw := raws[0]
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := d.DeliverVXLANAt(raw, benchTime)
			if err != nil {
				b.Fatal(err)
			}
			if res.GW.Action != sailfish.ActionForward {
				b.Fatal("not forwarded")
			}
		}
	})
	return toEntry("region/forward-traced", r, 1,
		"single-shot with flight recorder (1-in-64 sampling) + heavy-hitter tracker; delta vs region/forward is the tracing overhead")
}

// measureStages runs the forward path with the stage latency histograms
// attached and reads back p50/p99 per stage. Kept out of the benchmark rows
// because the per-stage clock reads inflate ns/op.
func measureStages() []stageQuantile {
	d, raws := newDeployment(2)
	reg := metrics.NewRegistry()
	sh := metrics.NewStageHistograms(reg, "sailfish_bench_stage_latency_ns", "fast-path stage latency")
	d.Region.EnableStageMetrics(sh)
	for _, c := range d.Region.Clusters {
		for _, n := range c.Nodes {
			if g, ok := n.GW.(interface {
				EnableStageMetrics(*metrics.StageHistograms)
			}); ok {
				g.EnableStageMetrics(sh)
			}
		}
	}
	const pkts = 100_000
	for i := 0; i < pkts; i++ {
		if _, err := d.DeliverVXLANAt(raws[i%len(raws)], benchTime); err != nil {
			panic(err)
		}
	}
	var out []stageQuantile
	for _, s := range []struct {
		name string
		h    *metrics.AtomicHistogram
	}{
		{"steer", sh.Steer},
		{"parse", sh.Parse},
		{"pipeline", sh.Pipeline},
		{"rewrite", sh.Rewrite},
	} {
		// Quantile reports NaN on an empty histogram; JSON has no NaN, so
		// an unexercised stage is published as 0 samples with zero quantiles.
		p50, p99 := s.h.Quantile(0.50), s.h.Quantile(0.99)
		if math.IsNaN(p50) {
			p50 = 0
		}
		if math.IsNaN(p99) {
			p99 = 0
		}
		out = append(out, stageQuantile{
			Stage:   s.name,
			Samples: s.h.Count(),
			P50Ns:   p50,
			P99Ns:   p99,
		})
	}
	return out
}

func benchBatch() entry {
	d, raws := newDeployment(2)
	out := make([]sailfish.BatchResult, 0, batchSize)
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out = d.DeliverVXLANBatchAt(raws, benchTime, out[:0])
			for j := range out {
				if out[j].Err != nil {
					b.Fatal(out[j].Err)
				}
			}
		}
	})
	return toEntry("region/forward-batch", r, batchSize,
		fmt.Sprintf("ProcessBatch, %d packets per op, recycled result slice", batchSize))
}

func benchDriver() entry {
	const queueDepth = 1024
	d, raws := newDeployment(2)
	drv := cluster.NewDriver(d.Region, queueDepth)
	// Warm-up before the Results drain starts: with nothing consuming
	// results the pipeline wedges, so every RX queue fills to capacity and
	// the whole worst-case in-flight buffer population is allocated here,
	// once, outside the timed region. (Fully wedged = several consecutive
	// all-rejected rounds; stopping at the first rx_queue_full drop leaves
	// the other node's queue short and the remainder of the ramp lands in
	// the timed loop — the "52 B/op" this row used to report.) From then
	// on the population-sized freelists recycle every buffer; steady state
	// allocates nothing.
	for consec, submitted := 0, 0; consec < 8 && submitted < 1<<22; submitted += batchSize {
		if drv.SubmitBatch(raws, benchTime) == 0 {
			consec++
		} else {
			consec = 0
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range drv.Results() {
		}
	}()
	// Backpressure is counted, not busy-spun: a full queue yields to the
	// workers and, if it stays full, parks briefly — on a saturated
	// single-core runner an unyielding submitter starves the very workers
	// it is waiting on.
	var retries, spin uint64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; {
			accepted := drv.SubmitBatch(raws, benchTime)
			if accepted == 0 {
				retries++
				if spin++; spin%256 == 0 {
					time.Sleep(20 * time.Microsecond)
				} else {
					runtime.Gosched()
				}
				continue
			}
			spin = 0
			n += accepted
		}
	})
	drv.Close()
	<-done
	return toEntry("driver/submit-batch", r, 1, fmt.Sprintf(
		"SubmitBatch of %d across 2 node workers, RX queues pre-filled; %d backpressure retries; "+
			"worker parallelism needs GOMAXPROCS>1 to pay off (this run: %d)",
		batchSize, retries, runtime.GOMAXPROCS(0)))
}

// benchShardPlane measures the multi-core sharded data plane at a given
// shard count: one dispatcher goroutine hashing frames onto per-shard SPSC
// rings, one run-to-completion worker lane per shard. GOMAXPROCS is set to
// the shard count plus the dispatcher for the duration of the row, so the
// family's scaling curve reflects the core budget it would get in
// production; on a runner with fewer CPUs the note records the truth and
// the ns/op rows show scheduler interleaving, not parallel speedup.
func benchShardPlane(shards int) entry {
	prev := runtime.GOMAXPROCS(0)
	runtime.GOMAXPROCS(shards + 1)
	defer runtime.GOMAXPROCS(prev)
	d, raws := newDeployment(2)
	p := shardplane.New(d.Region, shardplane.Config{Shards: shards, RingSlots: 4096})
	var retries, spin uint64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for !p.Submit(raws[i%len(raws)], benchTime) {
				retries++
				if spin++; spin%256 == 0 {
					time.Sleep(20 * time.Microsecond)
				} else {
					runtime.Gosched()
				}
			}
			spin = 0
		}
		// Settle the tail so ns/op covers completion, not just enqueue.
		p.Drain()
	})
	st := p.Stats()
	p.Close()
	if st.Processed != st.Accepted || st.Region.Forwarded != st.Processed {
		fmt.Fprintf(os.Stderr, "FAIL: shardplane/forward-%d lost packets: %+v\n", shards, st)
		os.Exit(1)
	}
	return toEntry(fmt.Sprintf("shardplane/forward-%d", shards), r, 1, fmt.Sprintf(
		"%d shard(s), 64 flows over SPSC rings; GOMAXPROCS=%d of %d cpu(s); %d submit retries; must be 0 allocs/op",
		shards, shards+1, runtime.NumCPU(), retries))
}

// benchPlacementCycle times the promotion-churn path: RunCycle over four
// software-placed tenants while a 64-key hot set shifts by 24 keys per
// cycle, so every timed cycle drains its full churn budget (24 promotions +
// 24 demotions) through the controller's push/evict machinery. The tracker
// is fed outside the timed section — the row measures cycle cost, not
// Observe cost (that overhead is region/forward-traced's job).
func benchPlacementCycle() entry {
	const (
		tenants = 4
		vmsPer  = 100
		keys    = tenants * vmsPer
		hotSet  = 64
		shift   = 24
		budget  = 2 * shift
	)
	d := sailfish.NewDeployment(sailfish.Options{Clusters: 1, FallbackNodes: 1})
	dips := make([]netip.Addr, keys)
	for ti := 0; ti < tenants; ti++ {
		t := sailfish.Tenant{
			VNI:    sailfish.VNI(100 + ti),
			Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(ti), 0, 0}), 16),
			VMs:    map[netip.Addr]netip.Addr{},
		}
		for vi := 0; vi < vmsPer; vi++ {
			k := ti*vmsPer + vi
			dips[k] = netip.AddrFrom4([4]byte{10, byte(ti), byte(vi), 2})
			t.VMs[dips[k]] = netip.AddrFrom4([4]byte{100, 64, byte(ti), byte(vi)})
		}
		if _, err := d.AddTenantSoftware(t); err != nil {
			panic(err)
		}
	}
	hh := heavyhitter.NewTracker(1024)
	loop := placement.New(placement.Config{
		CoverageTarget: 1,
		PromoteShare:   0.001, // 1/64 per hot key per window: all qualify
		ChurnBudget:    budget,
		WindowReset:    true,
		Now:            func() time.Time { return benchTime },
	}, d.Controller, hh)
	feed := func(start int) {
		for i := 0; i < hotSet; i++ {
			k := (start + i) % keys
			hh.Observe(0, sailfish.VNI(100+k/vmsPer), uint64(k), dips[k], 128)
		}
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		start := 0
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			feed(start)
			start = (start + shift) % keys
			b.StartTimer()
			rep := loop.RunCycle()
			if rep.Failed > 0 {
				b.Fatalf("cycle %d: %d moves failed", rep.Cycle, rep.Failed)
			}
		}
	})
	return toEntry("placement/cycle", r, 1, fmt.Sprintf(
		"RunCycle, %d-key hot set shifting %d keys/cycle over %d desired entries; "+
			"steady state moves %d keys/cycle through the controller; pps column is cycles/sec",
		hotSet, shift, d.Controller.DesiredEntries(), budget))
}

// benchPlacement3Tier times the residency-ladder cycle: RunCycle over four
// software-placed tenants with a DPU middle tier attached, a 64-key hot band
// and a 128-key warm band both sliding 24 keys per cycle. The warm band
// trails the hot band, so every timed cycle drains fresh hardware promotions,
// HW→DPU cascade demotions, and DPU evictions — the full three-tier churn
// machinery, not just the binary path benchPlacementCycle measures.
func benchPlacement3Tier() entry {
	const (
		tenants  = 4
		vmsPer   = 100
		keys     = tenants * vmsPer
		hotSet   = 64
		warmSet  = 128
		shift    = 24
		budget   = 2 * shift
		dpuOpCap = 2 * budget
	)
	d := sailfish.NewDeployment(sailfish.Options{Clusters: 1, FallbackNodes: 1, DPUDevices: 2})
	dips := make([]netip.Addr, keys)
	for ti := 0; ti < tenants; ti++ {
		t := sailfish.Tenant{
			VNI:    sailfish.VNI(100 + ti),
			Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(ti), 0, 0}), 16),
			VMs:    map[netip.Addr]netip.Addr{},
		}
		for vi := 0; vi < vmsPer; vi++ {
			k := ti*vmsPer + vi
			dips[k] = netip.AddrFrom4([4]byte{10, byte(ti), byte(vi), 2})
			t.VMs[dips[k]] = netip.AddrFrom4([4]byte{100, 64, byte(ti), byte(vi)})
		}
		if _, err := d.AddTenantSoftware(t); err != nil {
			panic(err)
		}
	}
	hh := heavyhitter.NewTracker(1024)
	loop := placement.New(placement.Config{
		CoverageTarget: 1,
		// Hot keys carry 4/384 ≈ 1.0e-2 per window, warm keys 1/384 ≈
		// 2.6e-3: the thresholds put the bands on their intended rungs and
		// make a key leaving the hot band cascade (warm-band share sits
		// between WarmDemoteShare and DemoteShare).
		PromoteShare:   8e-3,
		DemoteShare:    4e-3,
		WarmShare:      2e-3,
		ChurnBudget:    budget,
		DPUChurnBudget: dpuOpCap,
		WindowReset:    true,
		Now:            func() time.Time { return benchTime },
	}, d.Controller, hh)
	feed := func(start int) {
		for i := 0; i < hotSet; i++ {
			k := (start + i) % keys
			for j := 0; j < 4; j++ {
				hh.Observe(0, sailfish.VNI(100+k/vmsPer), uint64(k), dips[k], 128)
			}
		}
		for i := 1; i <= warmSet; i++ {
			k := (start - i + keys) % keys
			hh.Observe(0, sailfish.VNI(100+k/vmsPer), uint64(k), dips[k], 128)
		}
	}
	var cascades uint64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		cascades = 0
		start := 0
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			feed(start)
			start = (start + shift) % keys
			b.StartTimer()
			rep := loop.RunCycle()
			if rep.Failed > 0 {
				b.Fatalf("cycle %d: %d moves failed", rep.Cycle, rep.Failed)
			}
			cascades += uint64(rep.Cascaded)
		}
	})
	return toEntry("placement/3tier", r, 1, fmt.Sprintf(
		"ladder RunCycle, %d-key hot + %d-key warm bands sliding %d keys/cycle over %d desired entries; "+
			"%d HW→DPU cascades across the run; pps column is cycles/sec",
		hotSet, warmSet, shift, d.Controller.DesiredEntries(), cascades))
}

// SNAT bench shape: 256 public IPs × 64 shards gives 16.5M session capacity,
// so the 10M row runs the store at ~60% port-space fill.
const (
	snatIPs    = 256
	snatShards = 64
)

func snatPool(n int) []netip.Addr {
	ips := make([]netip.Addr, n)
	for i := range ips {
		ips[i] = netip.AddrFrom4([4]byte{198, 18, byte(i >> 8), byte(i)})
	}
	return ips
}

// snatKey derives the i-th distinct session key (the source address carries
// the low 24 bits of i). Pure value construction — benchmark loops call it
// inline without allocating.
func snatKey(i int) tables.SNATKey {
	return tables.SNATKey{
		VNI: 300,
		Flow: netpkt.Flow{
			Src:     netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}),
			Dst:     netip.AddrFrom4([4]byte{93, 184, 216, 34}),
			Proto:   netpkt.IPProtocolUDP,
			SrcPort: uint16(1024 + i%60000),
			DstPort: 443,
		},
	}
}

func snatScale(sessions int) string {
	if sessions >= 1_000_000 {
		return fmt.Sprintf("%dm", sessions/1_000_000)
	}
	return fmt.Sprintf("%dk", sessions/1_000)
}

// benchSNATTranslate measures the Translate hit path with `sessions` live
// sessions resident. The loop cycles through every established key, so the
// working set genuinely misses cache at the large populations.
// benchSLOEvaluate measures one evaluator pass of the per-tenant SLO
// engine: 64 tracked tenants, each with fresh counter traffic per tick, a
// full sample-ring push, both burn windows computed, and alert transitions
// checked. This is the control-loop cost the daemon pays once a second —
// the data-plane side (Collector increments) is covered by the alloc-pinned
// region/forward rows, which run with the collector attached in the
// cluster package's tests.
func benchSLOEvaluate() entry {
	const tenants = 64
	col := slo.NewCollector()
	for i := 0; i < tenants; i++ {
		col.Track(netpkt.VNI(100 + i))
	}
	eng := slo.NewEngine(slo.Config{}, col, slo.NewJournal(slo.DefaultJournalDepth))
	now := benchTime
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for t := 0; t < tenants; t++ {
				col.Forward(netpkt.VNI(100 + t))
			}
			now = now.Add(time.Second)
			eng.Tick(now)
		}
	})
	return toEntry("slo/evaluate", r, tenants, fmt.Sprintf(
		"one engine tick over %d tracked tenants (snapshot, ring push, two burn windows, alert transitions); pps is tenants/sec",
		tenants))
}

func benchSNATTranslate(sessions int) entry {
	st := snat.New(snat.Config{PublicIPs: snatPool(snatIPs), Shards: snatShards, JournalDepth: 4096})
	for i := 0; i < sessions; i++ {
		if _, err := st.Translate(snatKey(i), benchTime); err != nil {
			panic(err)
		}
	}
	i := 0
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			if _, err := st.Translate(snatKey(i), benchTime); err != nil {
				b.Fatal(err)
			}
			if i++; i == sessions {
				i = 0
			}
		}
	})
	return toEntry("snat/translate-"+snatScale(sessions), r, 1, fmt.Sprintf(
		"Translate hit path, %d resident sessions over %d shards × %d IPs, %d MiB resident; must be 0 allocs/op",
		sessions, snatShards, snatIPs, st.MemoryBytes()>>20))
}

// benchSNATReplicate measures the journal→standby delta pipeline at
// population: each op stamps a new second, touches a batch of established
// sessions (journaling one refresh delta apiece), and runs one Sync round
// that copies and applies the batch to the standby.
func benchSNATReplicate(sessions int) entry {
	const deltasPerOp = 1024
	svc := snat.NewService(snat.ServiceConfig{Store: snat.Config{
		PublicIPs: snatPool(snatIPs), Shards: snatShards, JournalDepth: 8192,
	}})
	now := benchTime
	for i := 0; i < sessions; i++ {
		if _, err := svc.Active().Translate(snatKey(i), now); err != nil {
			panic(err)
		}
	}
	// The population overflowed every journal ring; this Sync detects the
	// gaps and bootstraps the standby with full-shard snapshots, leaving the
	// timed loop to measure steady-state delta replication only.
	svc.Sync(now)
	cursor := 0
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			now = now.Add(time.Second)
			for j := 0; j < deltasPerOp; j++ {
				svc.Active().Touch(snatKey(cursor), now)
				if cursor++; cursor == sessions {
					cursor = 0
				}
			}
			if rep := svc.Sync(now); rep.Failed > 0 {
				b.Fatalf("sync failed %d shards", rep.Failed)
			}
		}
	})
	return toEntry("snat/replicate-"+snatScale(sessions), r, deltasPerOp, fmt.Sprintf(
		"journal+Sync of %d refresh deltas/op into a standby holding %d sessions; pps column is deltas/sec",
		deltasPerOp, sessions))
}

func main() {
	out := flag.String("o", "BENCH_fastpath.json", "output file")
	snatMax := flag.Int("snat-max", 10_000_000, "largest SNAT session population to bench (bench-smoke trims this)")
	lpmMax := flag.Int("lpm-max", 1_000_000, "largest LPM route database to bench (bench-smoke trims this)")
	flag.Parse()

	rep := report{
		Baselines: []entry{
			{Name: "region/forward", NsPerOp: 6126, BytesPerOp: 536, AllocsPerOp: 9,
				Pps: 1e9 / 6126, Note: "pre-optimization baseline recorded in ISSUE (reference machine)"},
			{Name: "region/forward", NsPerOp: 797, BytesPerOp: 236, AllocsPerOp: 7,
				Pps: 1e9 / 797, Note: "pre-optimization baseline re-measured on the 1-vCPU CI container"},
		},
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
		GeneratedBy: "go run ./cmd/fastpath-bench",
	}
	benches := []func() entry{benchSingleShot, benchTraced, benchBatch, benchDriver}
	for _, shards := range []int{1, 2, 4, 8} {
		s := shards
		benches = append(benches, func() entry { return benchShardPlane(s) })
	}
	benches = append(benches, benchPlacementCycle)
	benches = append(benches, benchPlacement3Tier)
	benches = append(benches, benchSLOEvaluate)
	for _, sessions := range []int{1_000_000, 10_000_000} {
		if sessions > *snatMax {
			continue
		}
		s := sessions
		benches = append(benches,
			func() entry { return benchSNATTranslate(s) },
			func() entry { return benchSNATReplicate(s) })
	}
	emit := func(e entry) {
		fmt.Printf("%-22s %10.1f ns/op %6d B/op %4d allocs/op %12.0f pps  %s\n",
			e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp, e.Pps, e.Note)
		if (strings.HasPrefix(e.Name, "snat/translate") || strings.HasPrefix(e.Name, "shardplane/forward")) &&
			e.AllocsPerOp > 0 {
			fmt.Fprintf(os.Stderr, "FAIL: %s allocates %d B in %d allocs/op; this fast path must be allocation-free\n",
				e.Name, e.BytesPerOp, e.AllocsPerOp)
			os.Exit(1)
		}
		rep.Results = append(rep.Results, e)
	}
	for _, bench := range benches {
		emit(bench())
	}
	lpmN := 1_000_000
	if *lpmMax < lpmN {
		lpmN = *lpmMax
	}
	for _, zipf := range []bool{false, true} {
		for _, e := range benchLPM(lpmN, zipf) {
			emit(e)
		}
	}
	rep.StageLatencies = measureStages()
	for _, s := range rep.StageLatencies {
		fmt.Printf("stage %-10s %8d samples  p50 %8.0f ns  p99 %8.0f ns\n",
			s.Stage, s.Samples, s.P50Ns, s.P99Ns)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
