// Command fastpath-bench measures the software data plane's fast path and
// writes the numbers to a JSON file (default BENCH_fastpath.json) so the
// repository carries its current performance envelope alongside the code.
//
// Three benchmarks run, via testing.Benchmark so the output needs no
// go-test parsing:
//
//   - region/forward: single-shot Region.ProcessPacket, the end-to-end
//     behavioral fast path (steering → ECMP → folded XGW-H → rewrite);
//   - region/forward-batch: the same path through Region.ProcessBatch with
//     the result slice recycled;
//   - driver/submit-batch: Driver.SubmitBatch feeding per-node worker
//     goroutines on a two-node cluster — the concurrent configuration whose
//     throughput must exceed the single-shot path.
//
// For regression hunting, prefer benchstat over eyeballing this file:
//
//	go test -run '^$' -bench BenchmarkRegionForward -benchmem -count 10 . > old.txt
//	... apply change ...
//	go test -run '^$' -bench BenchmarkRegionForward -benchmem -count 10 . > new.txt
//	benchstat old.txt new.txt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"runtime"
	"testing"
	"time"

	sailfish "sailfish"
	"sailfish/internal/cluster"
)

type entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Pps is packets per second implied by NsPerOp (ops may batch several
	// packets; the conversion accounts for that).
	Pps  float64 `json:"pps"`
	Note string  `json:"note,omitempty"`
}

type report struct {
	// Baselines are frozen pre-optimization numbers kept for comparison:
	// they are inputs to this file, not measured by this run.
	Baselines []entry `json:"baselines"`
	// Results are measured on the machine that ran `make bench`.
	Results     []entry `json:"results"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	GoVersion   string  `json:"go_version"`
	GeneratedBy string  `json:"generated_by"`
}

const batchSize = 64

var benchTime = time.Unix(0, 0)

func newDeployment(nodes int) (*sailfish.Deployment, [][]byte) {
	d := sailfish.NewDeployment(sailfish.Options{Clusters: 1, NodesPerCluster: nodes, FallbackNodes: 0})
	vm1 := netip.MustParseAddr("192.168.10.2")
	vm2 := netip.MustParseAddr("192.168.10.3")
	if _, err := d.AddTenant(sailfish.Tenant{
		VNI:    100,
		Prefix: netip.MustParsePrefix("192.168.10.0/24"),
		VMs: map[netip.Addr]netip.Addr{
			vm1: netip.MustParseAddr("10.1.1.11"),
			vm2: netip.MustParseAddr("10.1.1.12"),
		},
	}); err != nil {
		panic(err)
	}
	raws := make([][]byte, batchSize)
	for i := range raws {
		raw, err := sailfish.BuildVXLAN(100, vm1, vm2, sailfish.ProtoTCP, uint16(4242+i), 80, make([]byte, 64))
		if err != nil {
			panic(err)
		}
		raws[i] = append([]byte(nil), raw...)
	}
	return d, raws
}

func toEntry(name string, r testing.BenchmarkResult, pktsPerOp int, note string) entry {
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	return entry{
		Name:        name,
		NsPerOp:     ns,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Pps:         float64(pktsPerOp) * 1e9 / ns,
		Note:        note,
	}
}

func benchSingleShot() entry {
	d, raws := newDeployment(2)
	raw := raws[0]
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := d.DeliverVXLANAt(raw, benchTime)
			if err != nil {
				b.Fatal(err)
			}
			if res.GW.Action != sailfish.ActionForward {
				b.Fatal("not forwarded")
			}
		}
	})
	return toEntry("region/forward", r, 1, "single-shot ProcessPacket, 1 cluster x 2 nodes")
}

func benchBatch() entry {
	d, raws := newDeployment(2)
	out := make([]sailfish.BatchResult, 0, batchSize)
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out = d.DeliverVXLANBatchAt(raws, benchTime, out[:0])
			for j := range out {
				if out[j].Err != nil {
					b.Fatal(out[j].Err)
				}
			}
		}
	})
	return toEntry("region/forward-batch", r, batchSize,
		fmt.Sprintf("ProcessBatch, %d packets per op, recycled result slice", batchSize))
}

func benchDriver() entry {
	d, raws := newDeployment(2)
	drv := cluster.NewDriver(d.Region, 1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range drv.Results() {
		}
	}()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; {
			accepted := drv.SubmitBatch(raws, benchTime)
			if accepted == 0 {
				runtime.Gosched() // queues full: let the workers drain
				continue
			}
			n += accepted
		}
	})
	drv.Close()
	<-done
	return toEntry("driver/submit-batch", r, 1, fmt.Sprintf(
		"SubmitBatch of %d across 2 node workers; ns_per_op is per packet; "+
			"worker parallelism needs GOMAXPROCS>1 to pay off (this run: %d)",
		batchSize, runtime.GOMAXPROCS(0)))
}

func main() {
	out := flag.String("o", "BENCH_fastpath.json", "output file")
	flag.Parse()

	rep := report{
		Baselines: []entry{
			{Name: "region/forward", NsPerOp: 6126, BytesPerOp: 536, AllocsPerOp: 9,
				Pps: 1e9 / 6126, Note: "pre-optimization baseline recorded in ISSUE (reference machine)"},
			{Name: "region/forward", NsPerOp: 797, BytesPerOp: 236, AllocsPerOp: 7,
				Pps: 1e9 / 797, Note: "pre-optimization baseline re-measured on the 1-vCPU CI container"},
		},
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
		GeneratedBy: "go run ./cmd/fastpath-bench",
	}
	for _, bench := range []func() entry{benchSingleShot, benchBatch, benchDriver} {
		e := bench()
		fmt.Printf("%-22s %10.1f ns/op %6d B/op %4d allocs/op %12.0f pps  %s\n",
			e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp, e.Pps, e.Note)
		rep.Results = append(rep.Results, e)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
