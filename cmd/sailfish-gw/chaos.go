package main

import (
	"fmt"

	"sailfish/internal/sim"
)

// runChaos executes the seeded disaster-recovery scenario (node crash plus a
// lossy control channel during table population) and prints the recovery
// timeline — a demonstration that the §6.1 loop heals the region with no
// operator action.
func runChaos() error {
	cfg := sim.DefaultChaosConfig()
	fmt.Printf("chaos: %d clusters × %d nodes (+1:1 backups), %d x86 fallback nodes, %d tenants, seed %d\n",
		cfg.Clusters, cfg.NodesPerCluster, cfg.FallbackNodes, cfg.Tenants, cfg.Seed)
	for _, inj := range cfg.Faults {
		fmt.Printf("  inject %-13s on %s at %v for %v (p=%.2f)\n", inj.Kind, inj.Node, inj.At, inj.For, inj.Prob)
	}
	res, err := sim.RunChaos(cfg)
	if err != nil {
		return err
	}
	fmt.Println("\nrecovery timeline:")
	for _, e := range res.Events {
		fmt.Printf("  %s\n", e)
	}
	fmt.Printf("\nfault effects: %+v\n", res.FaultStats)
	fmt.Printf("recovery counters: %+v\n", res.Recovery)
	if res.TTRCount > 0 {
		fmt.Printf("time-to-recovery: n=%d mean=%v max=%v\n", res.TTRCount, res.TTRMean, res.TTRMax)
	}
	fmt.Printf("traffic: sent=%d delivered=%d lost=%d (loss %.2e, budget 2.0e-04)\n",
		res.Sent, res.Delivered, res.Lost, res.LossRate)
	fmt.Printf("post-recovery consistency: %v\n", res.Consistent)
	if !res.Consistent || res.LossRate >= 2e-4 {
		return fmt.Errorf("chaos scenario breached its acceptance budget")
	}
	fmt.Println("chaos scenario recovered automatically — no manual intervention")
	return nil
}
