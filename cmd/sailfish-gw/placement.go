package main

import (
	"fmt"
	"net/netip"
	"time"

	"sailfish/internal/cluster"
	"sailfish/internal/netpkt"
	"sailfish/internal/placement"
	"sailfish/internal/tables"
	"sailfish/internal/xgwdpu"
	"sailfish/internal/xgwh"
)

// Single-box residency: the daemon's software tenants live in the embedded
// XGW-x86 node's DRAM tables (the table of record); when placement is
// enabled, the residency loop promotes their hot (VNI, DIP) keys into the
// hardware gateway's tables and demotes them when they cool, so the box
// behaves like a miniature 95/5 deployment. Cycles run from the serve
// goroutine between datagrams — table mutation never races the data plane.

// placementConfig is the optional "placement" stanza of the daemon config.
type placementConfig struct {
	// IntervalMs is the cycle cadence; default 1000.
	IntervalMs int `json:"intervalMs"`
	// EntryBudget caps hardware slots spent on promoted entries; default 1024.
	EntryBudget int `json:"entryBudget"`
	// PromoteShare / DemoteShare / CoverageTarget / ChurnBudget map onto
	// placement.Config; zero values take that package's defaults.
	PromoteShare   float64 `json:"promoteShare"`
	DemoteShare    float64 `json:"demoteShare"`
	CoverageTarget float64 `json:"coverageTarget"`
	ChurnBudget    int     `json:"churnBudget"`
	// MinResidencyMs shields fresh promotions from demotion; default 0.
	MinResidencyMs int `json:"minResidencyMs"`
	// DPU, when present, attaches a SmartNIC/DPU warm tier between the
	// hardware gateway and the x86 software path and switches the loop to
	// the three-tier residency ladder (hot→hardware, warm→DPU, cold→x86).
	DPU *dpuConfig `json:"dpu,omitempty"`
}

// dpuConfig is the optional "dpu" sub-stanza of the placement stanza.
type dpuConfig struct {
	// Devices is the pool width; default 1.
	Devices int `json:"devices"`
	// EntryBudget caps warm-tier slots; default 8192.
	EntryBudget int `json:"entryBudget"`
	// WarmShare / WarmDemoteShare / ChurnBudget / MaxWaterLevel map onto
	// placement.Config's DPU knobs; zero values take that package's
	// defaults.
	WarmShare       float64 `json:"warmShare"`
	WarmDemoteShare float64 `json:"warmDemoteShare"`
	ChurnBudget     int     `json:"churnBudget"`
	MaxWaterLevel   float64 `json:"maxWaterLevel"`
}

// vmKey identifies one software tenant VM.
type vmKey struct {
	vni netpkt.VNI
	vm  netip.Addr
}

// boxPlane adapts the one-box daemon to placement.ControlPlane: desired
// state is the SoftwareTenants config (mirrored in the XGW-x86 node), the
// hardware gateway is the resident cache, and the entry budget plays the
// cluster-capacity role.
type boxPlane struct {
	gw       *xgwh.Gateway
	prefixes map[netpkt.VNI]netip.Prefix
	vms      map[vmKey]netip.Addr
	desired  int
	budget   int

	resident map[vmKey]bool
	routeRef map[netpkt.VNI]int
	used     int

	// Warm tier (nil pool → two-tier box, DPUFill reports ok=false and the
	// loop stays on the binary hot/cold split). The pool's own capacity
	// gate is the budget — installs past it fail with
	// xgwdpu.ErrOverCapacity, which the loop books as a capacity deferral.
	pool         *xgwdpu.Pool
	warm         map[vmKey]bool
	warmRouteRef map[netpkt.VNI]int
}

func newBoxPlane(gw *xgwh.Gateway, pool *xgwdpu.Pool, tenants []tenantConfig, budget int) (*boxPlane, error) {
	b := &boxPlane{
		gw:       gw,
		prefixes: make(map[netpkt.VNI]netip.Prefix),
		vms:      make(map[vmKey]netip.Addr),
		budget:   budget,
		resident: make(map[vmKey]bool),
		routeRef: make(map[netpkt.VNI]int),

		pool:         pool,
		warm:         make(map[vmKey]bool),
		warmRouteRef: make(map[netpkt.VNI]int),
	}
	for _, t := range tenants {
		vni := netpkt.VNI(t.VNI)
		p, err := netip.ParsePrefix(t.Prefix)
		if err != nil {
			return nil, fmt.Errorf("software tenant %d prefix: %w", t.VNI, err)
		}
		b.prefixes[vni] = p
		b.desired++ // the route
		for vm, nc := range t.VMs {
			vmIP, err := netip.ParseAddr(vm)
			if err != nil {
				return nil, err
			}
			ncIP, err := netip.ParseAddr(nc)
			if err != nil {
				return nil, err
			}
			b.vms[vmKey{vni, vmIP}] = ncIP
			b.desired++
		}
	}
	return b, nil
}

func (b *boxPlane) PromoteEntry(vni netpkt.VNI, dip netip.Addr) (int, error) {
	key := vmKey{vni, dip}
	if b.resident[key] {
		return 0, nil
	}
	nc, ok := b.vms[key]
	if !ok {
		return 0, fmt.Errorf("placement: no software tenant VM %v/%v", vni, dip)
	}
	slots := 1
	if b.routeRef[vni] == 0 {
		slots++
	}
	if b.used+slots > b.budget {
		return 0, fmt.Errorf("placement: entry budget: %w", cluster.ErrOverCapacity)
	}
	if b.routeRef[vni] == 0 {
		if err := b.gw.InstallRoute(vni, b.prefixes[vni], tables.Route{Scope: tables.ScopeLocal}); err != nil {
			return 0, err
		}
	}
	b.gw.InstallVM(vni, dip, nc)
	b.routeRef[vni]++
	b.resident[key] = true
	b.used += slots
	return slots, nil
}

func (b *boxPlane) DemoteEntry(vni netpkt.VNI, dip netip.Addr) (int, error) {
	key := vmKey{vni, dip}
	if !b.resident[key] {
		return 0, nil
	}
	slots := 1
	b.gw.RemoveVM(vni, dip)
	if b.routeRef[vni]--; b.routeRef[vni] <= 0 {
		delete(b.routeRef, vni)
		b.gw.RemoveRoute(vni, b.prefixes[vni])
		slots++
	}
	delete(b.resident, key)
	b.used -= slots
	return slots, nil
}

func (b *boxPlane) ClusterFill(id int) (used, capacity int, ok bool) {
	if id != 0 {
		return 0, 0, false
	}
	return b.used, b.budget, true
}

func (b *boxPlane) ResidentEntryCount() int { return b.used }
func (b *boxPlane) DesiredEntries() int     { return b.desired }

// PromoteEntryDPU installs the key into the warm tier; the pool's capacity
// gate plays the budget role (ErrOverCapacity → capacity deferral).
// Implements placement.LadderPlane.
func (b *boxPlane) PromoteEntryDPU(vni netpkt.VNI, dip netip.Addr) (int, error) {
	if b.pool == nil {
		return 0, fmt.Errorf("placement: no DPU tier attached")
	}
	key := vmKey{vni, dip}
	if b.warm[key] {
		return 0, nil
	}
	nc, ok := b.vms[key]
	if !ok {
		return 0, fmt.Errorf("placement: no software tenant VM %v/%v", vni, dip)
	}
	installed := 0
	if b.warmRouteRef[vni] == 0 {
		if err := b.pool.InstallRoute(vni, b.prefixes[vni], tables.Route{Scope: tables.ScopeLocal}); err != nil {
			return 0, err
		}
		installed++
	}
	if err := b.pool.InstallVM(vni, dip, nc); err != nil {
		// Roll the route back so a half-installed key never leaks outside
		// the warm refcounts.
		if b.warmRouteRef[vni] == 0 && installed > 0 {
			b.pool.RemoveRoute(vni, b.prefixes[vni])
			installed--
		}
		return installed, err
	}
	installed++
	b.warmRouteRef[vni]++
	b.warm[key] = true
	return installed, nil
}

// DemoteEntryDPU evicts the key from the warm tier; the covering route
// stays while other warm VMs of the tenant share it. Implements
// placement.LadderPlane.
func (b *boxPlane) DemoteEntryDPU(vni netpkt.VNI, dip netip.Addr) (int, error) {
	if b.pool == nil {
		return 0, fmt.Errorf("placement: no DPU tier attached")
	}
	key := vmKey{vni, dip}
	if !b.warm[key] {
		return 0, nil
	}
	evicted := 1
	b.pool.RemoveVM(vni, dip)
	if b.warmRouteRef[vni]--; b.warmRouteRef[vni] <= 0 {
		delete(b.warmRouteRef, vni)
		b.pool.RemoveRoute(vni, b.prefixes[vni])
		evicted++
	}
	delete(b.warm, key)
	return evicted, nil
}

// DPUFill reports the warm tier's water level; ok=false (no pool) keeps
// the loop on the binary hot/cold split. Implements placement.LadderPlane.
func (b *boxPlane) DPUFill() (used, capacity int, ok bool) {
	if b.pool == nil {
		return 0, 0, false
	}
	return b.pool.EntryCount(), b.pool.Capacity(), true
}

// enablePlacement wires the residency loop into the server, attaching the
// DPU warm tier first when the stanza asks for one.
func (s *server) enablePlacement(pc placementConfig, tenants []tenantConfig, gwIP netip.Addr) error {
	budget := pc.EntryBudget
	if budget <= 0 {
		budget = 1024
	}
	cfg := placement.Config{
		CoverageTarget: pc.CoverageTarget,
		PromoteShare:   pc.PromoteShare,
		DemoteShare:    pc.DemoteShare,
		ChurnBudget:    pc.ChurnBudget,
		MinResidency:   time.Duration(pc.MinResidencyMs) * time.Millisecond,
		WindowReset:    true,
	}
	if pc.DPU != nil {
		devices := pc.DPU.Devices
		if devices <= 0 {
			devices = 1
		}
		capacity := pc.DPU.EntryBudget
		if capacity <= 0 {
			capacity = 8192
		}
		s.dpu = xgwdpu.NewPool(xgwdpu.Config{
			Devices: devices, EntryCapacity: capacity, GatewayIP: gwIP,
		})
		s.dpu.EnableTracing(s.rec, "dpu")
		cfg.WarmShare = pc.DPU.WarmShare
		cfg.WarmDemoteShare = pc.DPU.WarmDemoteShare
		cfg.DPUChurnBudget = pc.DPU.ChurnBudget
		cfg.DPUMaxWaterLevel = pc.DPU.MaxWaterLevel
	}
	plane, err := newBoxPlane(s.gw, s.dpu, tenants, budget)
	if err != nil {
		return err
	}
	interval := time.Duration(pc.IntervalMs) * time.Millisecond
	if interval <= 0 {
		interval = time.Second
	}
	s.loop = placement.New(cfg, plane, s.hh)
	s.loopEvery = interval
	return nil
}

// maybeCycle runs a residency cycle when the cadence has elapsed. It is
// called from the serve goroutine only, between datagrams, so promotions and
// demotions never mutate tables mid-packet.
func (s *server) maybeCycle(now time.Time) {
	// The SNAT standby sync rides the same between-datagrams cadence the
	// residency loop uses: journal deltas are cheap to pump and keeping
	// the standby close bounds the orphan window at failover.
	if now.Sub(s.lastSync) >= time.Second {
		s.lastSync = now
		s.x86.SNATService().Sync(now)
	}
	// The SLO evaluator ticks between datagrams too: snapshots are atomic
	// reads, so the tick never blocks the data path for long, and the first
	// call establishes the cadence origin.
	if s.sloEng != nil {
		if s.lastSLOTick.IsZero() || now.Sub(s.lastSLOTick) >= s.sloEvery {
			s.lastSLOTick = now
			s.sloEng.Tick(now)
		}
	}
	if s.loop == nil {
		return
	}
	if s.lastCycle.IsZero() {
		s.lastCycle = now
		return
	}
	if now.Sub(s.lastCycle) >= s.loopEvery {
		s.lastCycle = now
		s.loop.RunCycle()
	}
}
