// Command sailfish-gw runs one XGW-H gateway as a real VXLAN-over-UDP
// forwarder: VXLAN datagrams arriving on the listen socket are pushed
// through the gateway's folded-pipeline model, and forwarded packets are
// re-encapsulated and sent over UDP to the destination NC's underlay
// address.
//
// Usage:
//
//	sailfish-gw -config region.json        # serve a config file
//	sailfish-gw -demo                      # self-contained loopback demo
//
// The config maps overlay state (tenants, VMs) and the underlay (NC IP →
// UDP address). See -demo for the wire protocol end to end: the daemon's
// UDP payload is the standard VXLAN header plus the inner Ethernet frame
// (RFC 7348), so any VXLAN-speaking peer can interoperate on the socket.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/netip"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sailfish/internal/heavyhitter"
	"sailfish/internal/netpkt"
	"sailfish/internal/pcap"
	"sailfish/internal/placement"
	"sailfish/internal/shardplane"
	"sailfish/internal/slo"
	"sailfish/internal/tables"
	"sailfish/internal/telemetry"
	"sailfish/internal/tofino"
	"sailfish/internal/trace"
	"sailfish/internal/xgw86"
	"sailfish/internal/xgwdpu"
	"sailfish/internal/xgwh"
)

// fileConfig is the JSON configuration of one gateway.
type fileConfig struct {
	GatewayIP string            `json:"gatewayIP"`
	Listen    string            `json:"listen"`
	Underlay  map[string]string `json:"underlay"` // NC IP → UDP addr
	Tenants   []tenantConfig    `json:"tenants"`
	// SoftwareTenants are installed only in the embedded XGW-x86 node —
	// the volatile-table half of the §4.2 co-design. Their traffic misses
	// in hardware and completes on the software path.
	SoftwareTenants []tenantConfig `json:"softwareTenants"`
	// Placement, when present, runs the 95/5 residency loop over the
	// software tenants: hot (VNI, DIP) keys are promoted into the hardware
	// gateway and demoted when they cool (see internal/placement).
	Placement *placementConfig `json:"placement,omitempty"`
	// SLO, when present, runs the per-tenant burn-rate evaluator over every
	// configured tenant and serves /slo, /slo/{vni} and /events on the admin
	// plane (see internal/slo).
	SLO *sloConfig `json:"slo,omitempty"`
	// Workers selects the datagram processing model. 0 or 1 (the default)
	// is the single run-to-completion serve loop. N > 1 runs the RSS-style
	// sharded plane: the receive goroutine hashes each datagram's flow onto
	// one of N SPSC rings, each drained by its own run-to-completion worker
	// goroutine — the same dispatch internal/shardplane uses for the
	// region, so a flow's packets always land on one worker and SNAT,
	// trace and heavy-hitter state keep flow affinity. Needs GOMAXPROCS
	// (and cores) > 1 to pay off. Incompatible with the placement stanza:
	// the residency loop mutates gateway tables between datagrams, which
	// is only safe while one goroutine owns the data path.
	Workers int `json:"workers,omitempty"`
}

type tenantConfig struct {
	VNI    uint32            `json:"vni"`
	Prefix string            `json:"prefix"`
	VMs    map[string]string `json:"vms"` // VM IP → NC IP
}

func main() {
	cfgPath := flag.String("config", "", "JSON config file")
	demo := flag.Bool("demo", false, "run the self-contained loopback demo and exit")
	chaos := flag.Bool("chaos", false, "run the seeded disaster-recovery chaos scenario and exit")
	count := flag.Int("n", 3, "demo: packets to send")
	pcapPath := flag.String("pcap", "", "write ingress/egress frames to this pcap file")
	adminAddr := flag.String("admin", "", "admin HTTP listen address (/metrics, /healthz, /debug/pprof); empty disables")
	flag.Parse()

	switch {
	case *chaos:
		if err := runChaos(); err != nil {
			log.Fatal(err)
		}
	case *demo:
		if err := runDemo(*count, *adminAddr); err != nil {
			log.Fatal(err)
		}
	case *cfgPath != "":
		raw, err := os.ReadFile(*cfgPath)
		if err != nil {
			log.Fatal(err)
		}
		var fc fileConfig
		if err := json.Unmarshal(raw, &fc); err != nil {
			log.Fatal(err)
		}
		gw, err := newServer(fc)
		if err != nil {
			log.Fatal(err)
		}
		if *pcapPath != "" {
			f, err := os.Create(*pcapPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			gw.pcap = pcap.NewWriter(f)
			log.Printf("sailfish-gw: capturing to %s", *pcapPath)
		}
		if *adminAddr != "" {
			bound, stop, err := startAdmin(*adminAddr, gw, gw.registerMetrics())
			if err != nil {
				log.Fatal(err)
			}
			defer stop() //nolint:errcheck
			log.Printf("sailfish-gw: admin plane on http://%s (/metrics, /healthz, /debug/pprof)", bound)
		}
		log.Printf("sailfish-gw: serving on %s (%d routes, %d VMs)",
			fc.Listen, gw.gw.RouteCount(), gw.gw.VMCount())
		log.Fatal(gw.serve())
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// server is the running daemon: a gateway plus its UDP socket and underlay
// address map.
type server struct {
	gw  *xgwh.Gateway
	x86 *xgw86.Node
	// dpu is the optional SmartNIC warm tier between the hardware gateway
	// and the x86 software path (nil unless the placement stanza's dpu
	// sub-stanza enables it). Hardware table misses try it before x86;
	// service-steered traffic (SNAT) skips straight to x86.
	dpu      *xgwdpu.Pool
	conn     *net.UDPConn
	underlay map[netip.Addr]*net.UDPAddr
	buf      [9216]byte
	sbuf     *netpkt.SerializeBuffer
	// pcap, when set, captures every synthesized ingress frame and every
	// rewritten egress frame.
	pcap *pcap.Writer
	// Observability planes, all wired at construction: the flight recorder
	// (both gateways emit into it), the heavy-hitter tracker (fed per
	// datagram from handle), and the Vtrace matcher/collector pair.
	rec       *trace.Recorder
	hh        *heavyhitter.Tracker
	matcher   *telemetry.Matcher
	collector *telemetry.Collector
	// Residency loop (nil unless the config enables placement). Cycles run
	// from the serve goroutine between datagrams.
	loop      *placement.Loop
	loopEvery time.Duration
	lastCycle time.Time
	// SLO evaluation (nil unless the config enables the slo stanza): the
	// collector mirrors every datagram's disposition per VNI, the engine
	// evaluates burn rates on maybeCycle's cadence, and the journal merges
	// alerts with placement and SNAT events.
	sloCol      *slo.Collector
	sloEng      *slo.Engine
	journal     *slo.Journal
	sloEvery    time.Duration
	lastSLOTick time.Time
	// lastSync throttles the SNAT standby replication pump.
	lastSync time.Time
	// Sharded mode (workers > 1): one gwShard per worker, the x86 software
	// path serialized across them (its re-encap scratch is
	// single-threaded), and a closed flag the dispatcher flips so workers
	// drain and exit.
	workers int
	shards  []*gwShard
	fbMu    sync.Mutex
	closed  atomic.Bool
}

// gwShard is one worker's share of the sharded data plane: a bounded SPSC
// ring fed by the dispatcher and a private gateway scratch, so the hot path
// never crosses a lock except at the x86 fallback tail.
type gwShard struct {
	ring      *shardplane.Ring
	sc        *xgwh.PacketScratch
	processed atomic.Uint64
	ringFull  atomic.Uint64
	oversize  atomic.Uint64
}

func newServer(fc fileConfig) (*server, error) {
	gwIP, err := netip.ParseAddr(fc.GatewayIP)
	if err != nil {
		return nil, fmt.Errorf("gatewayIP: %w", err)
	}
	x86cfg := xgw86.DefaultConfig()
	x86cfg.GatewayIP = gwIP
	s := &server{
		gw: xgwh.New(xgwh.Config{
			Chip: tofino.DefaultChip(), Folded: true, SplitPipes: true,
			GatewayIP: gwIP,
		}),
		x86:      xgw86.NewNode(x86cfg),
		underlay: make(map[netip.Addr]*net.UDPAddr),
		sbuf:     netpkt.NewSerializeBuffer(128, 4096),

		// 1-in-64 deterministic flow sampling; drops are always captured.
		rec:       trace.New(trace.Config{Shards: 8, SlotsPerShard: 4096, SampleShift: 6}),
		hh:        heavyhitter.NewTracker(1024),
		matcher:   telemetry.NewMatcher(),
		collector: telemetry.NewCollector(),
	}
	s.gw.EnableTracing(s.rec, "xgwh-0")
	s.x86.EnableTracing(s.rec, "xgw86-0")
	s.gw.EnableTelemetry("xgwh-0", s.matcher, s.collector)
	for nc, addr := range fc.Underlay {
		ip, err := netip.ParseAddr(nc)
		if err != nil {
			return nil, fmt.Errorf("underlay key %q: %w", nc, err)
		}
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("underlay %q: %w", addr, err)
		}
		s.underlay[ip] = ua
	}
	for _, t := range fc.Tenants {
		p, err := netip.ParsePrefix(t.Prefix)
		if err != nil {
			return nil, fmt.Errorf("tenant %d prefix: %w", t.VNI, err)
		}
		if err := s.gw.InstallRoute(netpkt.VNI(t.VNI), p, tables.Route{Scope: tables.ScopeLocal}); err != nil {
			return nil, err
		}
		for vm, nc := range t.VMs {
			vmIP, err := netip.ParseAddr(vm)
			if err != nil {
				return nil, err
			}
			ncIP, err := netip.ParseAddr(nc)
			if err != nil {
				return nil, err
			}
			s.gw.InstallVM(netpkt.VNI(t.VNI), vmIP, ncIP)
		}
	}
	for _, t := range fc.SoftwareTenants {
		p, err := netip.ParsePrefix(t.Prefix)
		if err != nil {
			return nil, fmt.Errorf("software tenant %d prefix: %w", t.VNI, err)
		}
		if err := s.x86.Routes.Insert(netpkt.VNI(t.VNI), p, tables.Route{Scope: tables.ScopeLocal}); err != nil {
			return nil, err
		}
		for vm, nc := range t.VMs {
			vmIP, err := netip.ParseAddr(vm)
			if err != nil {
				return nil, err
			}
			ncIP, err := netip.ParseAddr(nc)
			if err != nil {
				return nil, err
			}
			s.x86.VMNC.Insert(netpkt.VNI(t.VNI), vmIP, ncIP)
		}
	}
	if fc.Workers < 0 {
		return nil, fmt.Errorf("workers: %d (must be >= 0)", fc.Workers)
	}
	if fc.Workers > 1 && fc.Placement != nil {
		return nil, fmt.Errorf("workers: %d is incompatible with the placement stanza: "+
			"the residency loop mutates gateway tables between datagrams, which is only "+
			"safe while one goroutine owns the data path; set workers to 1 or drop placement",
			fc.Workers)
	}
	s.workers = fc.Workers
	if fc.Workers > 1 {
		s.shards = make([]*gwShard, fc.Workers)
		for i := range s.shards {
			// Scratch events resolve to the gateway's wired recorder; ring
			// slots hold a full synthesized frame (9216-byte datagram
			// budget plus outer Eth/IP/UDP headroom).
			s.shards[i] = &gwShard{
				ring: shardplane.NewRing(shardRingSlots, shardMaxFrame),
				sc:   xgwh.NewPacketScratch(),
			}
		}
	}
	if fc.Placement != nil {
		if err := s.enablePlacement(*fc.Placement, fc.SoftwareTenants, gwIP); err != nil {
			return nil, err
		}
	}
	if fc.SLO != nil {
		s.enableSLO(*fc.SLO, fc)
	}
	laddr, err := net.ResolveUDPAddr("udp", fc.Listen)
	if err != nil {
		return nil, err
	}
	s.conn, err = net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Sharded-mode ring geometry: slots hold one synthesized frame — the
// 9216-byte datagram budget plus outer Eth/IP/UDP headroom.
const (
	shardRingSlots = 1024
	shardMaxFrame  = 10240
)

// serve is the receive loop: one goroutine, run-to-completion per datagram —
// the chip processes packets one pipeline pass at a time, so a single loop
// models it faithfully while the socket provides backpressure. With
// workers > 1 the loop instead becomes the RSS dispatcher over per-worker
// rings (serveSharded).
func (s *server) serve() error {
	if s.workers > 1 {
		return s.serveSharded()
	}
	for {
		n, _, err := s.conn.ReadFromUDP(s.buf[:])
		if err != nil {
			return err
		}
		if err := s.handle(s.buf[:n]); err != nil {
			log.Printf("sailfish-gw: %v", err)
		}
	}
}

// serveSharded is the workers-mode receive loop: this goroutine plays the
// NIC RSS stage, hashing each datagram's flow onto its shard's SPSC ring;
// one worker goroutine per shard drains its ring run-to-completion through
// a private gateway scratch. The dispatch hash is the flow hash, so a
// flow's packets always land on one worker and per-flow state (SNAT, trace
// sampling, heavy hitters) keeps affinity. A full ring tail-drops the
// datagram, as a NIC RX queue would.
func (s *server) serveSharded() error {
	if s.pcap != nil {
		return fmt.Errorf("pcap capture requires the serial data path; set workers to 1")
	}
	var wg sync.WaitGroup
	for _, sh := range s.shards {
		wg.Add(1)
		go func(sh *gwShard) {
			defer wg.Done()
			s.shardWorker(sh)
		}(sh)
	}
	var rerr error
	for {
		n, _, err := s.conn.ReadFromUDP(s.buf[:])
		if err != nil {
			rerr = err
			break
		}
		// Placement is gated off in this mode; the cycle hook only pumps
		// the SNAT standby sync, which the session store serializes itself.
		s.maybeCycle(time.Now())
		frame, err := s.synthesizeOuter(s.buf[:n])
		if err != nil {
			log.Printf("sailfish-gw: %v", err)
			continue
		}
		// Unparseable frames shard to 0 so the worker books the parse_error
		// drop under the normal taxonomy, exactly as internal/shardplane
		// dispatches for the region.
		sh := s.shards[0]
		var fm netpkt.FrontMeta
		if perr := netpkt.ParseFront(frame, &fm); perr == nil {
			sh = s.shards[shardplane.ShardIndex(fm.Flow.FastHash(), len(s.shards))]
		}
		if len(frame) > sh.ring.MaxPacket() {
			sh.oversize.Add(1)
			continue
		}
		if !sh.ring.Push(frame, time.Now().UnixNano()) {
			sh.ringFull.Add(1)
		}
	}
	s.closed.Store(true)
	wg.Wait()
	return rerr
}

// shardWorker drains one shard's ring until the dispatcher closes the
// plane and the ring is empty. The idle backoff mirrors the shardplane
// worker: spin briefly, then yield, then park — a loaded shard never
// reaches the sleep tier.
func (s *server) shardWorker(sh *gwShard) {
	idle := 0
	for {
		frame, ns, ok := sh.ring.Peek()
		if !ok {
			if s.closed.Load() {
				return
			}
			if idle++; idle < 64 {
				continue
			} else if idle < 256 {
				runtime.Gosched()
			} else {
				time.Sleep(20 * time.Microsecond)
			}
			continue
		}
		idle = 0
		if err := s.handleOn(sh, frame, time.Unix(0, ns)); err != nil {
			log.Printf("sailfish-gw: %v", err)
		}
		sh.ring.Advance()
		sh.processed.Add(1)
	}
}

// handleOn processes one synthesized frame on a shard worker: the same
// pipeline as handle, entered through the shard's private scratch. The x86
// software tail serializes across workers (its re-encap scratch is
// single-threaded), as the region's shard lanes do.
func (s *server) handleOn(sh *gwShard, frame []byte, now time.Time) error {
	var fm netpkt.FrontMeta
	vni := netpkt.VNI(0)
	if perr := netpkt.ParseFront(frame, &fm); perr == nil {
		vni = fm.VNI
		// The tracker locks internally; flow affinity keeps each flow's
		// updates on one worker regardless.
		s.hh.Observe(0, fm.VNI, fm.Flow.FastHash(), fm.Flow.Dst, fm.WireLen)
	}
	res, err := s.gw.ProcessPacketWith(sh.sc, frame, now)
	if err != nil {
		s.sloDrop(vni)
		return err
	}
	switch res.Action {
	case xgwh.ActionForward:
		s.sloForward(vni)
		return s.send(res.NC, res.Out)
	case xgwh.ActionFallback:
		// Hold the lock across the send: fres.Out (and the DPU tier's
		// dres.Out) alias per-node re-encap scratch until the next pass.
		// The DPU tier is nil in workers mode today (the placement stanza
		// is incompatible with workers > 1), but the attempt sits inside
		// the same critical section so the invariant survives if that
		// gate is ever relaxed.
		s.fbMu.Lock()
		defer s.fbMu.Unlock()
		if res.FallbackMiss {
			s.sloFallbackMiss(vni)
		}
		if s.dpu != nil && res.FallbackMiss {
			dres, served, derr := s.dpu.ProcessOn(s.dpuDevice(frame), frame, now)
			if derr != nil {
				s.sloDrop(vni)
				return fmt.Errorf("dpu path: %w", derr)
			}
			if served {
				s.sloDPUServed(vni)
				return s.send(dres.NC, dres.Out)
			}
		}
		fres, ferr := s.x86.ProcessFallback(frame, now)
		if ferr != nil {
			s.sloDrop(vni)
			return fmt.Errorf("software path: %w", ferr)
		}
		s.sloFallback(vni, res.FallbackMiss)
		return s.send(fres.NC, fres.Out)
	default:
		s.sloDrop(vni)
		return fmt.Errorf("dropped: %s", res.DropReason)
	}
}

// send strips the outer encapsulation from a rewritten frame and transmits
// the VXLAN payload to the NC's underlay address. Safe for concurrent use:
// the UDP socket serializes writes.
func (s *server) send(nc netip.Addr, frame []byte) error {
	ua := s.underlay[nc]
	if ua == nil {
		return fmt.Errorf("no underlay address for NC %v", nc)
	}
	out, err := vxlanPayload(frame)
	if err != nil {
		return err
	}
	_, err = s.conn.WriteToUDP(out, ua)
	return err
}

// handle processes one VXLAN datagram (VXLAN header + inner frame).
func (s *server) handle(payload []byte) error {
	s.maybeCycle(time.Now())
	frame, err := s.synthesizeOuter(payload)
	if err != nil {
		return err
	}
	if s.pcap != nil {
		if err := s.pcap.WritePacket(time.Now(), frame); err != nil {
			return err
		}
	}
	// Feed the heavy-hitter tracker from the front parse, as the region
	// front end does (this daemon is one box, so cluster 0).
	var fm netpkt.FrontMeta
	vni := netpkt.VNI(0)
	if perr := netpkt.ParseFront(frame, &fm); perr == nil {
		vni = fm.VNI
		s.hh.Observe(0, fm.VNI, fm.Flow.FastHash(), fm.Flow.Dst, fm.WireLen)
	}
	res, err := s.gw.ProcessPacket(frame, time.Now())
	if err != nil {
		s.sloDrop(vni)
		return err
	}
	switch res.Action {
	case xgwh.ActionForward:
		s.sloForward(vni)
		ua := s.underlay[res.NC]
		if ua == nil {
			return fmt.Errorf("no underlay address for NC %v", res.NC)
		}
		// res.Out is the rewritten full frame; the UDP payload starts
		// after outer Eth/IP/UDP.
		if s.pcap != nil {
			if err := s.pcap.WritePacket(time.Now(), res.Out); err != nil {
				return err
			}
		}
		out, err := vxlanPayload(res.Out)
		if err != nil {
			return err
		}
		_, err = s.conn.WriteToUDP(out, ua)
		return err
	case xgwh.ActionFallback:
		// Three-tier ladder: a hardware table miss tries the DPU warm
		// tier first; service-steered traffic (SNAT) skips it, since the
		// stateful services live on x86 only.
		if res.FallbackMiss {
			s.sloFallbackMiss(vni)
		}
		if s.dpu != nil && res.FallbackMiss {
			dres, served, derr := s.dpu.ProcessOn(s.dpuDevice(frame), frame, time.Now())
			if derr != nil {
				s.sloDrop(vni)
				return fmt.Errorf("dpu path: %w", derr)
			}
			if served {
				s.sloDPUServed(vni)
				if s.pcap != nil {
					if err := s.pcap.WritePacket(time.Now(), dres.Out); err != nil {
						return err
					}
				}
				return s.send(dres.NC, dres.Out)
			}
		}
		// HW/SW co-design: the software node completes the long tail.
		fres, ferr := s.x86.ProcessFallback(frame, time.Now())
		if ferr != nil {
			s.sloDrop(vni)
			return fmt.Errorf("software path: %w", ferr)
		}
		s.sloFallback(vni, res.FallbackMiss)
		ua := s.underlay[fres.NC]
		if ua == nil {
			return fmt.Errorf("no underlay address for NC %v", fres.NC)
		}
		if s.pcap != nil {
			if err := s.pcap.WritePacket(time.Now(), fres.Out); err != nil {
				return err
			}
		}
		out, err := vxlanPayload(fres.Out)
		if err != nil {
			return err
		}
		_, err = s.conn.WriteToUDP(out, ua)
		return err
	default:
		s.sloDrop(vni)
		return fmt.Errorf("dropped: %s", res.DropReason)
	}
}

// dpuDevice picks the warm-tier device for a frame by flow hash, the same
// dispatch the region's lanes use, so a flow's DPU passes always land on
// one device's scratch. Frames that reached the fallback tail parsed in
// the gateway, so the front parse cannot fail here; 0 is a safe default.
func (s *server) dpuDevice(frame []byte) int {
	var fm netpkt.FrontMeta
	if err := netpkt.ParseFront(frame, &fm); err != nil {
		return 0
	}
	return int(fm.Flow.FastHash() % uint64(s.dpu.Devices()))
}

// synthesizeOuter wraps the datagram payload in the outer headers the
// kernel consumed, so the gateway's parser sees a full frame.
func (s *server) synthesizeOuter(payload []byte) ([]byte, error) {
	if err := netpkt.SerializeLayers(s.sbuf, payload,
		&netpkt.Ethernet{EtherType: netpkt.EtherTypeIPv4},
		&netpkt.IPv4{TTL: 64, Protocol: netpkt.IPProtocolUDP,
			SrcIP: netip.MustParseAddr("127.0.0.1"),
			DstIP: netip.MustParseAddr("127.0.0.1")},
		&netpkt.UDP{SrcPort: 49152, DstPort: netpkt.VXLANPort},
	); err != nil {
		return nil, err
	}
	return s.sbuf.Bytes(), nil
}

// vxlanPayload strips outer Eth/IP/UDP from a full frame, returning the
// VXLAN header + inner frame for UDP transmission.
func vxlanPayload(frame []byte) ([]byte, error) {
	var eth netpkt.Ethernet
	if err := eth.DecodeFromBytes(frame); err != nil {
		return nil, err
	}
	var l4 []byte
	switch eth.EtherType {
	case netpkt.EtherTypeIPv4:
		var ip netpkt.IPv4
		if err := ip.DecodeFromBytes(eth.Payload()); err != nil {
			return nil, err
		}
		l4 = ip.Payload()
	case netpkt.EtherTypeIPv6:
		var ip netpkt.IPv6
		if err := ip.DecodeFromBytes(eth.Payload()); err != nil {
			return nil, err
		}
		l4 = ip.Payload()
	default:
		return nil, netpkt.ErrNotVXLAN
	}
	var udp netpkt.UDP
	if err := udp.DecodeFromBytes(l4); err != nil {
		return nil, err
	}
	return udp.Payload(), nil
}

// --- demo mode ---

// runDemo wires a gateway and two NC listeners on loopback sockets, then
// sends VM-to-VM packets end to end over real UDP. A non-empty adminAddr
// additionally serves the admin plane for the demo's lifetime, so the live
// /metrics view can be watched while packets flow.
func runDemo(count int, adminAddr string) error {
	// NC listeners.
	nc1, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return err
	}
	defer nc1.Close()
	nc2, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return err
	}
	defer nc2.Close()

	fc := fileConfig{
		GatewayIP: "10.255.0.1",
		Listen:    "127.0.0.1:0",
		Underlay: map[string]string{
			"10.1.1.11": nc1.LocalAddr().String(),
			"10.1.1.12": nc2.LocalAddr().String(),
		},
		Tenants: []tenantConfig{{
			VNI: 100, Prefix: "192.168.10.0/24",
			VMs: map[string]string{
				"192.168.10.2": "10.1.1.11",
				"192.168.10.3": "10.1.1.12",
			},
		}},
	}
	srv, err := newServer(fc)
	if err != nil {
		return err
	}
	if adminAddr != "" {
		bound, stop, err := startAdmin(adminAddr, srv, srv.registerMetrics())
		if err != nil {
			return err
		}
		defer stop() //nolint:errcheck
		fmt.Printf("admin plane on http://%s\n", bound)
	}
	served := make(chan struct{})
	go func() {
		defer close(served)
		srv.serve() //nolint:errcheck // returns when the socket closes
	}()

	gwAddr := srv.conn.LocalAddr().(*net.UDPAddr)
	fmt.Printf("gateway on %v; NC 10.1.1.11 → %v; NC 10.1.1.12 → %v\n",
		gwAddr, nc1.LocalAddr(), nc2.LocalAddr())

	// A vSwitch client sends VM 192.168.10.2 → VM 192.168.10.3.
	client, err := net.DialUDP("udp", nil, gwAddr)
	if err != nil {
		return err
	}
	defer client.Close()
	sbuf := netpkt.NewSerializeBuffer(64, 512)
	for i := 0; i < count; i++ {
		payload := []byte(fmt.Sprintf("hello-%d", i))
		if err := netpkt.SerializeLayers(sbuf, payload,
			&netpkt.VXLAN{VNI: 100},
			&netpkt.Ethernet{EtherType: netpkt.EtherTypeIPv4},
			&netpkt.IPv4{TTL: 64, Protocol: netpkt.IPProtocolUDP,
				SrcIP: netip.MustParseAddr("192.168.10.2"),
				DstIP: netip.MustParseAddr("192.168.10.3")},
			&netpkt.UDP{SrcPort: 5000, DstPort: 6000},
		); err != nil {
			return err
		}
		if _, err := client.Write(sbuf.Bytes()); err != nil {
			return err
		}
	}

	// NC2 hosts the destination VM: it must receive every packet,
	// VXLAN-encapsulated, VNI intact.
	nc2.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 2048)
	for i := 0; i < count; i++ {
		n, err := nc2.Read(buf)
		if err != nil {
			return fmt.Errorf("NC did not receive packet %d: %w", i, err)
		}
		var vx netpkt.VXLAN
		if err := vx.DecodeFromBytes(buf[:n]); err != nil {
			return err
		}
		var inner netpkt.Ethernet
		if err := inner.DecodeFromBytes(vx.Payload()); err != nil {
			return err
		}
		var ip netpkt.IPv4
		if err := ip.DecodeFromBytes(inner.Payload()); err != nil {
			return err
		}
		var udp netpkt.UDP
		if err := udp.DecodeFromBytes(ip.Payload()); err != nil {
			return err
		}
		fmt.Printf("NC(10.1.1.12) got %v %v→%v payload=%q\n",
			vx.VNI, ip.SrcIP, ip.DstIP, udp.Payload())
	}
	// Stats are atomic snapshots: read them while the serve loop still runs,
	// then shut the socket down.
	st := srv.gw.Stats()
	fmt.Printf("gateway stats: forwarded=%d fallback=%d dropped=%d\n",
		st.Forwarded, st.Fallback, st.Dropped)
	srv.conn.Close()
	<-served
	return nil
}
