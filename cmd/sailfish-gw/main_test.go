package main

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"sailfish/internal/netpkt"
)

// End-to-end over real loopback UDP: client → gateway socket → NC socket.
func TestServerForwardsOverUDP(t *testing.T) {
	nc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	fc := fileConfig{
		GatewayIP: "10.255.0.1",
		Listen:    "127.0.0.1:0",
		Underlay:  map[string]string{"10.1.1.12": nc.LocalAddr().String()},
		Tenants: []tenantConfig{{
			VNI: 100, Prefix: "192.168.10.0/24",
			VMs: map[string]string{"192.168.10.3": "10.1.1.12"},
		}},
	}
	srv, err := newServer(fc)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.conn.Close()
	go srv.serve() //nolint:errcheck

	client, err := net.DialUDP("udp", nil, srv.conn.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	sbuf := netpkt.NewSerializeBuffer(64, 512)
	if err := netpkt.SerializeLayers(sbuf, []byte("ping"),
		&netpkt.VXLAN{VNI: 100},
		&netpkt.Ethernet{EtherType: netpkt.EtherTypeIPv4},
		&netpkt.IPv4{TTL: 64, Protocol: netpkt.IPProtocolUDP,
			SrcIP: netip.MustParseAddr("192.168.10.2"),
			DstIP: netip.MustParseAddr("192.168.10.3")},
		&netpkt.UDP{SrcPort: 5000, DstPort: 6000},
	); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(sbuf.Bytes()); err != nil {
		t.Fatal(err)
	}

	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 2048)
	n, err := nc.Read(buf)
	if err != nil {
		t.Fatalf("NC socket received nothing: %v", err)
	}
	var vx netpkt.VXLAN
	if err := vx.DecodeFromBytes(buf[:n]); err != nil {
		t.Fatal(err)
	}
	if vx.VNI != 100 {
		t.Fatalf("VNI = %v", vx.VNI)
	}
	var eth netpkt.Ethernet
	if err := eth.DecodeFromBytes(vx.Payload()); err != nil {
		t.Fatal(err)
	}
	var ip netpkt.IPv4
	if err := ip.DecodeFromBytes(eth.Payload()); err != nil {
		t.Fatal(err)
	}
	if ip.DstIP != netip.MustParseAddr("192.168.10.3") {
		t.Fatalf("inner dst = %v", ip.DstIP)
	}
	var udp netpkt.UDP
	if err := udp.DecodeFromBytes(ip.Payload()); err != nil {
		t.Fatal(err)
	}
	if string(udp.Payload()) != "ping" {
		t.Fatalf("payload = %q", udp.Payload())
	}
}

func TestNewServerRejectsBadConfig(t *testing.T) {
	bad := []fileConfig{
		{GatewayIP: "not-an-ip", Listen: "127.0.0.1:0"},
		{GatewayIP: "10.0.0.1", Listen: "127.0.0.1:0",
			Underlay: map[string]string{"zzz": "127.0.0.1:1"}},
		{GatewayIP: "10.0.0.1", Listen: "127.0.0.1:0",
			Tenants: []tenantConfig{{VNI: 1, Prefix: "nope"}}},
	}
	for i, fc := range bad {
		if srv, err := newServer(fc); err == nil {
			srv.conn.Close()
			t.Fatalf("config %d accepted", i)
		}
	}
}

func TestDemoRuns(t *testing.T) {
	if err := runDemo(2, ""); err != nil {
		t.Fatal(err)
	}
}

// A software-only tenant (volatile tables) completes over the embedded
// XGW-x86 path: HW misses, SW forwards, the NC still receives the frame.
func TestServerSoftwareTenantFallsBackOverUDP(t *testing.T) {
	nc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	fc := fileConfig{
		GatewayIP: "10.255.0.1",
		Listen:    "127.0.0.1:0",
		Underlay:  map[string]string{"10.1.1.50": nc.LocalAddr().String()},
		SoftwareTenants: []tenantConfig{{
			VNI: 700, Prefix: "172.30.0.0/24",
			VMs: map[string]string{"172.30.0.9": "10.1.1.50"},
		}},
	}
	srv, err := newServer(fc)
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan struct{})
	go func() {
		defer close(served)
		srv.serve() //nolint:errcheck
	}()

	client, err := net.DialUDP("udp", nil, srv.conn.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	sbuf := netpkt.NewSerializeBuffer(64, 512)
	if err := netpkt.SerializeLayers(sbuf, []byte("volatile"),
		&netpkt.VXLAN{VNI: 700},
		&netpkt.Ethernet{EtherType: netpkt.EtherTypeIPv4},
		&netpkt.IPv4{TTL: 64, Protocol: netpkt.IPProtocolUDP,
			SrcIP: netip.MustParseAddr("172.30.0.1"),
			DstIP: netip.MustParseAddr("172.30.0.9")},
		&netpkt.UDP{SrcPort: 1, DstPort: 2},
	); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(sbuf.Bytes()); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 2048)
	n, err := nc.Read(buf)
	if err != nil {
		t.Fatalf("software path did not deliver: %v", err)
	}
	var vx netpkt.VXLAN
	if err := vx.DecodeFromBytes(buf[:n]); err != nil {
		t.Fatal(err)
	}
	if vx.VNI != 700 {
		t.Fatalf("VNI = %v", vx.VNI)
	}
	// Stats are atomic snapshots: read them while the serve loop still
	// runs — the counter was incremented before the frame reached the NC.
	if srv.gw.Stats().Fallback == 0 {
		t.Fatal("hardware gateway did not record the fallback")
	}
	srv.conn.Close()
	<-served
}
