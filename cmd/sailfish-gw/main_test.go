package main

import (
	"io"
	"net"
	"net/netip"
	"testing"
	"time"

	"sailfish/internal/netpkt"
	"sailfish/internal/pcap"
)

// End-to-end over real loopback UDP: client → gateway socket → NC socket.
func TestServerForwardsOverUDP(t *testing.T) {
	nc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	fc := fileConfig{
		GatewayIP: "10.255.0.1",
		Listen:    "127.0.0.1:0",
		Underlay:  map[string]string{"10.1.1.12": nc.LocalAddr().String()},
		Tenants: []tenantConfig{{
			VNI: 100, Prefix: "192.168.10.0/24",
			VMs: map[string]string{"192.168.10.3": "10.1.1.12"},
		}},
	}
	srv, err := newServer(fc)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.conn.Close()
	go srv.serve() //nolint:errcheck

	client, err := net.DialUDP("udp", nil, srv.conn.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	sbuf := netpkt.NewSerializeBuffer(64, 512)
	if err := netpkt.SerializeLayers(sbuf, []byte("ping"),
		&netpkt.VXLAN{VNI: 100},
		&netpkt.Ethernet{EtherType: netpkt.EtherTypeIPv4},
		&netpkt.IPv4{TTL: 64, Protocol: netpkt.IPProtocolUDP,
			SrcIP: netip.MustParseAddr("192.168.10.2"),
			DstIP: netip.MustParseAddr("192.168.10.3")},
		&netpkt.UDP{SrcPort: 5000, DstPort: 6000},
	); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(sbuf.Bytes()); err != nil {
		t.Fatal(err)
	}

	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 2048)
	n, err := nc.Read(buf)
	if err != nil {
		t.Fatalf("NC socket received nothing: %v", err)
	}
	var vx netpkt.VXLAN
	if err := vx.DecodeFromBytes(buf[:n]); err != nil {
		t.Fatal(err)
	}
	if vx.VNI != 100 {
		t.Fatalf("VNI = %v", vx.VNI)
	}
	var eth netpkt.Ethernet
	if err := eth.DecodeFromBytes(vx.Payload()); err != nil {
		t.Fatal(err)
	}
	var ip netpkt.IPv4
	if err := ip.DecodeFromBytes(eth.Payload()); err != nil {
		t.Fatal(err)
	}
	if ip.DstIP != netip.MustParseAddr("192.168.10.3") {
		t.Fatalf("inner dst = %v", ip.DstIP)
	}
	var udp netpkt.UDP
	if err := udp.DecodeFromBytes(ip.Payload()); err != nil {
		t.Fatal(err)
	}
	if string(udp.Payload()) != "ping" {
		t.Fatalf("payload = %q", udp.Payload())
	}
}

func TestNewServerRejectsBadConfig(t *testing.T) {
	bad := []fileConfig{
		{GatewayIP: "not-an-ip", Listen: "127.0.0.1:0"},
		{GatewayIP: "10.0.0.1", Listen: "127.0.0.1:0",
			Underlay: map[string]string{"zzz": "127.0.0.1:1"}},
		{GatewayIP: "10.0.0.1", Listen: "127.0.0.1:0",
			Tenants: []tenantConfig{{VNI: 1, Prefix: "nope"}}},
	}
	for i, fc := range bad {
		if srv, err := newServer(fc); err == nil {
			srv.conn.Close()
			t.Fatalf("config %d accepted", i)
		}
	}
}

func TestDemoRuns(t *testing.T) {
	if err := runDemo(2, ""); err != nil {
		t.Fatal(err)
	}
}

// A software-only tenant (volatile tables) completes over the embedded
// XGW-x86 path: HW misses, SW forwards, the NC still receives the frame.
func TestServerSoftwareTenantFallsBackOverUDP(t *testing.T) {
	nc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	fc := fileConfig{
		GatewayIP: "10.255.0.1",
		Listen:    "127.0.0.1:0",
		Underlay:  map[string]string{"10.1.1.50": nc.LocalAddr().String()},
		SoftwareTenants: []tenantConfig{{
			VNI: 700, Prefix: "172.30.0.0/24",
			VMs: map[string]string{"172.30.0.9": "10.1.1.50"},
		}},
	}
	srv, err := newServer(fc)
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan struct{})
	go func() {
		defer close(served)
		srv.serve() //nolint:errcheck
	}()

	client, err := net.DialUDP("udp", nil, srv.conn.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	sbuf := netpkt.NewSerializeBuffer(64, 512)
	if err := netpkt.SerializeLayers(sbuf, []byte("volatile"),
		&netpkt.VXLAN{VNI: 700},
		&netpkt.Ethernet{EtherType: netpkt.EtherTypeIPv4},
		&netpkt.IPv4{TTL: 64, Protocol: netpkt.IPProtocolUDP,
			SrcIP: netip.MustParseAddr("172.30.0.1"),
			DstIP: netip.MustParseAddr("172.30.0.9")},
		&netpkt.UDP{SrcPort: 1, DstPort: 2},
	); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(sbuf.Bytes()); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 2048)
	n, err := nc.Read(buf)
	if err != nil {
		t.Fatalf("software path did not deliver: %v", err)
	}
	var vx netpkt.VXLAN
	if err := vx.DecodeFromBytes(buf[:n]); err != nil {
		t.Fatal(err)
	}
	if vx.VNI != 700 {
		t.Fatalf("VNI = %v", vx.VNI)
	}
	// Stats are atomic snapshots: read them while the serve loop still
	// runs — the counter was incremented before the frame reached the NC.
	if srv.gw.Stats().Fallback == 0 {
		t.Fatal("hardware gateway did not record the fallback")
	}
	srv.conn.Close()
	<-served
}

// Workers mode end to end: many flows through the sharded dispatcher, every
// datagram delivered, the hardware and software tails both exercised, and
// every frame accounted for by exactly one shard worker.
func TestServerShardedWorkersOverUDP(t *testing.T) {
	nc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	fc := fileConfig{
		GatewayIP: "10.255.0.1",
		Listen:    "127.0.0.1:0",
		Workers:   4,
		Underlay:  map[string]string{"10.1.1.12": nc.LocalAddr().String()},
		Tenants: []tenantConfig{{
			VNI: 100, Prefix: "192.168.10.0/24",
			VMs: map[string]string{"192.168.10.3": "10.1.1.12"},
		}},
		SoftwareTenants: []tenantConfig{{
			VNI: 700, Prefix: "172.30.0.0/24",
			VMs: map[string]string{"172.30.0.9": "10.1.1.12"},
		}},
	}
	srv, err := newServer(fc)
	if err != nil {
		t.Fatal(err)
	}
	if len(srv.shards) != 4 {
		t.Fatalf("shards = %d, want 4", len(srv.shards))
	}
	served := make(chan struct{})
	go func() {
		defer close(served)
		srv.serve() //nolint:errcheck
	}()

	client, err := net.DialUDP("udp", nil, srv.conn.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const perPath = 32
	sbuf := netpkt.NewSerializeBuffer(64, 512)
	for i := 0; i < perPath; i++ {
		// Hardware path: distinct source ports → distinct flows → the
		// dispatcher spreads them over the shards.
		if err := netpkt.SerializeLayers(sbuf, []byte("hw"),
			&netpkt.VXLAN{VNI: 100},
			&netpkt.Ethernet{EtherType: netpkt.EtherTypeIPv4},
			&netpkt.IPv4{TTL: 64, Protocol: netpkt.IPProtocolUDP,
				SrcIP: netip.MustParseAddr("192.168.10.2"),
				DstIP: netip.MustParseAddr("192.168.10.3")},
			&netpkt.UDP{SrcPort: uint16(5000 + i), DstPort: 6000},
		); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Write(sbuf.Bytes()); err != nil {
			t.Fatal(err)
		}
		// Software tail: exercises the serialized x86 path across workers.
		if err := netpkt.SerializeLayers(sbuf, []byte("sw"),
			&netpkt.VXLAN{VNI: 700},
			&netpkt.Ethernet{EtherType: netpkt.EtherTypeIPv4},
			&netpkt.IPv4{TTL: 64, Protocol: netpkt.IPProtocolUDP,
				SrcIP: netip.MustParseAddr("172.30.0.1"),
				DstIP: netip.MustParseAddr("172.30.0.9")},
			&netpkt.UDP{SrcPort: uint16(7000 + i), DstPort: 2},
		); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Write(sbuf.Bytes()); err != nil {
			t.Fatal(err)
		}
	}

	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 2048)
	var hw, sw int
	for hw+sw < 2*perPath {
		n, err := nc.Read(buf)
		if err != nil {
			t.Fatalf("received %d/%d datagrams: %v", hw+sw, 2*perPath, err)
		}
		var vx netpkt.VXLAN
		if err := vx.DecodeFromBytes(buf[:n]); err != nil {
			t.Fatal(err)
		}
		switch vx.VNI {
		case 100:
			hw++
		case 700:
			sw++
		default:
			t.Fatalf("unexpected VNI %v", vx.VNI)
		}
	}
	if hw != perPath || sw != perPath {
		t.Fatalf("hw = %d, sw = %d, want %d each", hw, sw, perPath)
	}
	var processed, busy uint64
	for _, sh := range srv.shards {
		if p := sh.processed.Load(); p > 0 {
			busy++
			processed += p
		}
		if rf := sh.ringFull.Load(); rf != 0 {
			t.Fatalf("ring full drops = %d with %d-slot rings", rf, shardRingSlots)
		}
	}
	if processed != 2*perPath {
		t.Fatalf("workers processed %d, want %d", processed, 2*perPath)
	}
	if busy < 2 {
		t.Fatalf("only %d shard(s) carried traffic; 64 flows should spread", busy)
	}
	if srv.gw.Stats().Fallback == 0 {
		t.Fatal("hardware gateway did not record the software-tenant fallback")
	}
	srv.conn.Close()
	<-served
}

// The workers stanza composes with everything except mutation-between-
// datagrams features: placement is rejected at config load, pcap at serve.
func TestShardedWorkersConfigGates(t *testing.T) {
	if _, err := newServer(fileConfig{
		GatewayIP: "10.255.0.1", Listen: "127.0.0.1:0", Workers: -1,
	}); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, err := newServer(fileConfig{
		GatewayIP: "10.255.0.1", Listen: "127.0.0.1:0", Workers: 4,
		Placement: &placementConfig{},
	}); err == nil {
		t.Fatal("workers > 1 with placement accepted")
	}
	// workers: 1 with placement stays on the serial path and is fine.
	srv, err := newServer(fileConfig{
		GatewayIP: "10.255.0.1", Listen: "127.0.0.1:0", Workers: 1,
		Placement: &placementConfig{},
	})
	if err != nil {
		t.Fatalf("workers: 1 with placement rejected: %v", err)
	}
	srv.conn.Close()

	srv, err = newServer(fileConfig{
		GatewayIP: "10.255.0.1", Listen: "127.0.0.1:0", Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.conn.Close()
	srv.pcap = pcap.NewWriter(io.Discard)
	if err := srv.serve(); err == nil {
		t.Fatal("sharded serve with pcap accepted")
	}
}
