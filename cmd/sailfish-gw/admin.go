package main

import (
	"encoding/json"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"net/netip"
	"strconv"
	"strings"

	"sailfish/internal/adminapi"
	"sailfish/internal/metrics"
	"sailfish/internal/netpkt"
	"sailfish/internal/telemetry"
	"sailfish/internal/trace"
)

// The admin plane: a loopback-friendly HTTP listener exposing the live
// registry as Prometheus text (/metrics), a liveness probe (/healthz), the
// standard pprof surface (/debug/pprof/...), the flight recorder
// (/debug/trace, /debug/trace/drops), heavy-hitter telemetry (/topk) and
// the Vtrace loss-localization view (/vtrace, /vtrace/rule) — all read-only
// views over atomic counters and lock-free rings (rule installs are
// copy-on-write), so scraping never perturbs the data plane.

// registerMetrics builds the daemon's live registry: gateway and software
// node counters (including every drop reason), the fallback ratio, and the
// per-stage latency histograms that ProcessPacket starts observing once
// attached.
func (s *server) registerMetrics() *metrics.Registry {
	reg := metrics.NewRegistry()
	s.gw.RegisterMetrics(reg, "xgwh-0")
	s.x86.RegisterMetrics(reg, "xgw86-0")
	s.x86.SNATService().RegisterMetrics(reg)
	stages := metrics.NewStageHistograms(reg,
		"sailfish_gw_stage_latency_ns",
		"per-stage forwarding latency in nanoseconds")
	s.gw.EnableStageMetrics(stages)
	if s.loop != nil {
		s.loop.RegisterMetrics(reg)
	}
	if s.sloEng != nil {
		s.sloEng.AttachStageHistograms(stages)
		s.sloEng.RegisterMetrics(reg)
	}
	if s.dpu != nil {
		s.dpu.RegisterMetrics(reg)
	}
	// Workers mode: per-shard intake counters and ring-depth gauges, the
	// daemon-side mirror of the shardplane families. Gateway counters above
	// are already merged — every worker increments the same atomic cells.
	for i, sh := range s.shards {
		sh := sh
		lbl := metrics.Labels{"shard": strconv.Itoa(i)}
		reg.CounterFunc("sailfish_gw_shard_processed_total", "datagrams run to completion by the worker", lbl,
			sh.processed.Load)
		reg.CounterFunc("sailfish_gw_shard_ring_full_total", "datagrams tail-dropped by a full shard ring", lbl,
			sh.ringFull.Load)
		reg.CounterFunc("sailfish_gw_shard_oversize_total", "datagrams exceeding the ring slot size", lbl,
			sh.oversize.Load)
		reg.GaugeFunc("sailfish_gw_shard_ring_depth", "current shard ring depth", lbl,
			func() float64 { return float64(sh.ring.Len()) })
	}
	return reg
}

// writeJSON renders one response body; encode errors mean the client left.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone mid-reply
}

// newAdminMux mounts the admin endpoints on a private mux (pprof is wired
// explicitly rather than through http.DefaultServeMux, so tests can run
// several admin planes side by side).
func newAdminMux(s *server, reg *metrics.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w) //nolint:errcheck // client gone mid-scrape
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n")) //nolint:errcheck
	})

	// Flight recorder. ?flow= takes the hex hash printed by the trace/topk
	// views (0x-prefixed or bare), ?vni= narrows to a tenant, ?drops=1
	// keeps only drop verdicts, ?n= caps the event count (newest kept).
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		var f trace.Filter
		if v := q.Get("flow"); v != "" {
			h, err := strconv.ParseUint(v, 0, 64)
			if err != nil {
				http.Error(w, "bad flow: "+err.Error(), http.StatusBadRequest)
				return
			}
			f.FlowHash, f.MatchFlow = h, true
		}
		if v := q.Get("vni"); v != "" {
			u, err := strconv.ParseUint(v, 0, 32)
			if err != nil {
				http.Error(w, "bad vni: "+err.Error(), http.StatusBadRequest)
				return
			}
			f.VNI, f.MatchVNI = netpkt.VNI(u), true
		}
		if v := q.Get("drops"); v == "1" || v == "true" {
			f.DropsOnly = true
		}
		if v := q.Get("n"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				http.Error(w, "bad n: "+err.Error(), http.StatusBadRequest)
				return
			}
			f.Limit = n
		}
		writeJSON(w, adminapi.BuildTrace(s.rec, f))
	})
	mux.HandleFunc("/debug/trace/drops", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, adminapi.BuildDrops(s.rec))
	})

	// Stateful SNAT survivability: per-shard occupancy, replication lag
	// and backlog, and the preserved/orphaned promotion accounting.
	mux.HandleFunc("/snat", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, adminapi.BuildSNAT(s.x86.SNATService()))
	})

	// Heavy hitters: ?coverage= is the residency target (default 0.95, the
	// 95 in the paper's 95/5 split); ?n= caps the flow top-K list.
	mux.HandleFunc("/topk", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		coverage := 0.95
		if v := q.Get("coverage"); v != "" {
			c, err := strconv.ParseFloat(v, 64)
			// NaN fails neither bound check, so test for it explicitly
			// rather than handing a poison value to HotEntries.
			if err != nil || math.IsNaN(c) || c < 0 || c > 1 {
				http.Error(w, "bad coverage (want 0..1)", http.StatusBadRequest)
				return
			}
			coverage = c
		}
		n := 10
		if v := q.Get("n"); v != "" {
			var err error
			if n, err = strconv.Atoi(v); err != nil {
				http.Error(w, "bad n: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		writeJSON(w, adminapi.BuildTopK(s.hh, coverage, n))
	})

	// Residency loop: the last cycle's report, lifetime totals and the
	// promoted set. Served (with enabled=false) even when placement is off,
	// so clients need no probing.
	mux.HandleFunc("/placement", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, adminapi.BuildPlacement(s.loop))
	})

	// Per-tenant SLO state: /slo is every tracked tenant's burn/coverage
	// view, /slo/{vni} adds one tenant's retained per-tick history. Served
	// (with enabled=false) even when the slo stanza is off.
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, adminapi.BuildSLO(s.sloEng))
	})
	mux.HandleFunc("/slo/", func(w http.ResponseWriter, r *http.Request) {
		u, err := strconv.ParseUint(strings.TrimPrefix(r.URL.Path, "/slo/"), 10, 32)
		if err != nil {
			http.Error(w, "bad vni: "+err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, adminapi.BuildSLOTenant(s.sloEng, uint32(u)))
	})

	// Ops journal tail: ?since= resumes strictly after a sequence number
	// (the cursor a follower advances), ?n= caps the page size.
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		var since uint64
		if v := q.Get("since"); v != "" {
			var err error
			if since, err = strconv.ParseUint(v, 10, 64); err != nil {
				http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		max := 0
		if v := q.Get("n"); v != "" {
			var err error
			if max, err = strconv.Atoi(v); err != nil || max < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
		}
		writeJSON(w, adminapi.BuildEvents(s.journal, since, max))
	})

	// Vtrace: the collector's flow paths and loss-localization findings.
	// The expected hop list is this daemon's single hardware box — the
	// software node only appears on fallback paths, so it is not part of
	// the healthy sequence.
	mux.HandleFunc("/vtrace", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, adminapi.BuildVtrace(s.matcher, s.collector, []string{"xgwh-0"}))
	})
	mux.HandleFunc("/vtrace/rule", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		u, err := strconv.ParseUint(q.Get("vni"), 0, 32)
		if err != nil {
			http.Error(w, "bad vni: "+err.Error(), http.StatusBadRequest)
			return
		}
		rule := telemetry.Rule{VNI: netpkt.VNI(u)}
		resp := adminapi.VtraceRule{VNI: uint32(u)}
		if v := q.Get("dst"); v != "" {
			p, err := netip.ParsePrefix(v)
			if err != nil {
				http.Error(w, "bad dst: "+err.Error(), http.StatusBadRequest)
				return
			}
			rule.Dst = p
			resp.Dst = p.String()
		}
		s.matcher.Add(rule)
		writeJSON(w, resp)
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// startAdmin binds addr and serves the admin mux from a background
// goroutine, returning the bound address (useful with ":0") and a closer.
func startAdmin(addr string, s *server, reg *metrics.Registry) (net.Addr, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: newAdminMux(s, reg)}
	go srv.Serve(ln) //nolint:errcheck // returns on Close
	return ln.Addr(), srv.Close, nil
}
