package main

import (
	"net"
	"net/http"
	"net/http/pprof"

	"sailfish/internal/metrics"
)

// The admin plane: a loopback-friendly HTTP listener exposing the live
// registry as Prometheus text (/metrics), a liveness probe (/healthz) and
// the standard pprof surface (/debug/pprof/...) — all read-only views over
// atomic counters, so scraping never perturbs the data plane.

// registerMetrics builds the daemon's live registry: gateway and software
// node counters (including every drop reason), the fallback ratio, and the
// per-stage latency histograms that ProcessPacket starts observing once
// attached.
func (s *server) registerMetrics() *metrics.Registry {
	reg := metrics.NewRegistry()
	s.gw.RegisterMetrics(reg, "xgwh-0")
	s.x86.RegisterMetrics(reg, "xgw86-0")
	s.gw.EnableStageMetrics(metrics.NewStageHistograms(reg,
		"sailfish_gw_stage_latency_ns",
		"per-stage forwarding latency in nanoseconds"))
	return reg
}

// newAdminMux mounts the admin endpoints on a private mux (pprof is wired
// explicitly rather than through http.DefaultServeMux, so tests can run
// several admin planes side by side).
func newAdminMux(reg *metrics.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w) //nolint:errcheck // client gone mid-scrape
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n")) //nolint:errcheck
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// startAdmin binds addr and serves the admin mux from a background
// goroutine, returning the bound address (useful with ":0") and a closer.
func startAdmin(addr string, reg *metrics.Registry) (net.Addr, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: newAdminMux(reg)}
	go srv.Serve(ln) //nolint:errcheck // returns on Close
	return ln.Addr(), srv.Close, nil
}
