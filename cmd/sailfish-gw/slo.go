package main

import (
	"strconv"
	"time"

	"sailfish/internal/netpkt"
	"sailfish/internal/placement"
	"sailfish/internal/slo"
)

// Per-tenant SLO evaluation on the one-box daemon: the collector mirrors the
// data plane's disposition of every datagram per VNI, the engine evaluates
// multi-window burn rates between datagrams (riding maybeCycle's cadence like
// the residency loop), and the ops journal merges the resulting alerts with
// placement transitions and SNAT promotions into one ordered stream behind
// /events.

// sloConfig is the optional "slo" stanza of the daemon config.
type sloConfig struct {
	// LossBudget is the per-tenant loss-ratio SLO; default 2e-4 (0.2‰).
	LossBudget float64 `json:"lossBudget"`
	// FastWindowMs / SlowWindowMs are the burn windows; defaults 1m / 1h.
	FastWindowMs int `json:"fastWindowMs"`
	SlowWindowMs int `json:"slowWindowMs"`
	// FastBurn / SlowBurn are the burn thresholds; defaults 14 / 2.
	FastBurn float64 `json:"fastBurn"`
	SlowBurn float64 `json:"slowBurn"`
	// History is the per-tenant sample-ring capacity; default 256.
	History int `json:"history"`
	// JournalDepth bounds the ops journal; default 4096.
	JournalDepth int `json:"journalDepth"`
	// TickMs is the evaluator cadence; default 1000.
	TickMs int `json:"tickMs"`
}

// enableSLO builds the collector/engine/journal trio, tracks every configured
// tenant, and wires the placement and SNAT event producers into the journal.
// Called after enablePlacement so the loop sink can attach.
func (s *server) enableSLO(sc sloConfig, fc fileConfig) {
	depth := sc.JournalDepth
	if depth <= 0 {
		depth = slo.DefaultJournalDepth
	}
	s.journal = slo.NewJournal(depth)
	s.sloCol = slo.NewCollector()
	for _, t := range fc.Tenants {
		s.sloCol.Track(netpkt.VNI(t.VNI))
	}
	for _, t := range fc.SoftwareTenants {
		s.sloCol.Track(netpkt.VNI(t.VNI))
	}
	s.sloEng = slo.NewEngine(slo.Config{
		LossBudget: sc.LossBudget,
		FastWindow: time.Duration(sc.FastWindowMs) * time.Millisecond,
		SlowWindow: time.Duration(sc.SlowWindowMs) * time.Millisecond,
		FastBurn:   sc.FastBurn,
		SlowBurn:   sc.SlowBurn,
		History:    sc.History,
	}, s.sloCol, s.journal)
	s.sloEvery = time.Duration(sc.TickMs) * time.Millisecond
	if s.sloEvery <= 0 {
		s.sloEvery = time.Second
	}

	// Residency transitions: invoked mid-cycle with the loop lock held, so
	// the adapter only appends to the journal (lock-cheap, no re-entry).
	if s.loop != nil {
		j := s.journal
		s.loop.SetEventSink(func(ev placement.Event) {
			j.Append(slo.Entry{
				TimeNs:  ev.At.UnixNano(),
				Source:  "placement",
				Kind:    ev.Kind,
				VNI:     ev.VNI,
				Cluster: ev.Cluster,
				Detail:  ev.DIP.String() + " share " + strconv.FormatFloat(ev.Share, 'f', -1, 64),
			})
		})
	}
	// SNAT promotions: failover/failback session outcomes.
	j := s.journal
	s.x86.SNATService().SetPromotionSink(func(kind string, preserved, orphaned uint64) {
		j.Append(slo.Entry{
			TimeNs:  time.Now().UnixNano(),
			Source:  "snat",
			Kind:    kind,
			Cluster: -1,
			Detail: "sessions preserved " + strconv.FormatUint(preserved, 10) +
				", orphaned " + strconv.FormatUint(orphaned, 10),
		})
	})
}

// sloOutcome books one datagram's disposition into the collector, mirroring
// the region-lane taxonomy: forward, DPU-served, x86 fallback (with the miss
// marker), or drop. vni is 0 when the front parse failed — the collector
// routes that to its untracked cell.
func (s *server) sloForward(vni netpkt.VNI) {
	if s.sloCol != nil {
		s.sloCol.Forward(vni)
	}
}

func (s *server) sloDrop(vni netpkt.VNI) {
	if s.sloCol != nil {
		s.sloCol.Drop(vni)
	}
}

func (s *server) sloFallbackMiss(vni netpkt.VNI) {
	if s.sloCol != nil {
		s.sloCol.FallbackMiss(vni)
	}
}

func (s *server) sloDPUServed(vni netpkt.VNI) {
	if s.sloCol != nil {
		s.sloCol.DPUServed(vni)
	}
}

func (s *server) sloFallback(vni netpkt.VNI, miss bool) {
	if s.sloCol != nil {
		s.sloCol.Fallback(vni)
		if miss {
			s.sloCol.FallbackMissX86(vni)
		}
	}
}
