package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"strings"
	"testing"
	"time"

	"sailfish/internal/netpkt"
)

// The admin plane end to end: traffic flows through the daemon's UDP socket
// while an HTTP client scrapes /metrics, and the exposition must carry the
// gateway counters, the fallback ratio, every drop-reason label, and the
// stage histograms — no quiescing anywhere.
func TestAdminMetricsEndpoint(t *testing.T) {
	nc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	fc := fileConfig{
		GatewayIP: "10.255.0.1",
		Listen:    "127.0.0.1:0",
		Underlay:  map[string]string{"10.1.1.12": nc.LocalAddr().String()},
		Tenants: []tenantConfig{{
			VNI: 100, Prefix: "192.168.10.0/24",
			VMs: map[string]string{"192.168.10.3": "10.1.1.12"},
		}},
	}
	srv, err := newServer(fc)
	if err != nil {
		t.Fatal(err)
	}
	bound, stop, err := startAdmin("127.0.0.1:0", srv.registerMetrics())
	if err != nil {
		t.Fatal(err)
	}
	defer stop() //nolint:errcheck
	served := make(chan struct{})
	go func() {
		defer close(served)
		srv.serve() //nolint:errcheck
	}()
	defer func() { srv.conn.Close(); <-served }()

	client, err := net.DialUDP("udp", nil, srv.conn.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	sbuf := netpkt.NewSerializeBuffer(64, 512)
	if err := netpkt.SerializeLayers(sbuf, []byte("ping"),
		&netpkt.VXLAN{VNI: 100},
		&netpkt.Ethernet{EtherType: netpkt.EtherTypeIPv4},
		&netpkt.IPv4{TTL: 64, Protocol: netpkt.IPProtocolUDP,
			SrcIP: netip.MustParseAddr("192.168.10.2"),
			DstIP: netip.MustParseAddr("192.168.10.3")},
		&netpkt.UDP{SrcPort: 5000, DstPort: 6000},
	); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(sbuf.Bytes()); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 2048)
	if _, err := nc.Read(buf); err != nil {
		t.Fatalf("NC socket received nothing: %v", err)
	}

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", bound, path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(ctype, "text/plain") {
		t.Fatalf("content type = %q", ctype)
	}
	for _, want := range []string{
		`sailfish_gw_forwarded_total{node="xgwh-0"} 1`,
		`sailfish_gw_fallback_ratio{node="xgwh-0"} 0`,
		`reason="parse_error"`,
		`reason="no_nc"`,
		`sailfish_gw_stage_latency_ns_bucket{stage="parse",le="+Inf"} 1`,
		`sailfish_gw_stage_latency_ns_count{stage="pipeline"} 1`,
		`sailfish_gw_stage_latency_ns_count{stage="rewrite"} 1`,
		`sailfish_x86_forwarded_total{node="xgw86-0"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
	if hz, _ := get("/healthz"); hz != "ok\n" {
		t.Fatalf("/healthz = %q", hz)
	}
}
