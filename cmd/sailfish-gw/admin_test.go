package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"strings"
	"testing"
	"time"

	"sailfish/internal/netpkt"
)

// The admin plane end to end: traffic flows through the daemon's UDP socket
// while an HTTP client scrapes /metrics, and the exposition must carry the
// gateway counters, the fallback ratio, every drop-reason label, and the
// stage histograms — no quiescing anywhere.
func TestAdminMetricsEndpoint(t *testing.T) {
	nc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	fc := fileConfig{
		GatewayIP: "10.255.0.1",
		Listen:    "127.0.0.1:0",
		Underlay:  map[string]string{"10.1.1.12": nc.LocalAddr().String()},
		Tenants: []tenantConfig{{
			VNI: 100, Prefix: "192.168.10.0/24",
			VMs: map[string]string{"192.168.10.3": "10.1.1.12"},
		}},
	}
	srv, err := newServer(fc)
	if err != nil {
		t.Fatal(err)
	}
	bound, stop, err := startAdmin("127.0.0.1:0", srv, srv.registerMetrics())
	if err != nil {
		t.Fatal(err)
	}
	defer stop() //nolint:errcheck
	served := make(chan struct{})
	go func() {
		defer close(served)
		srv.serve() //nolint:errcheck
	}()
	defer func() { srv.conn.Close(); <-served }()

	client, err := net.DialUDP("udp", nil, srv.conn.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	sbuf := netpkt.NewSerializeBuffer(64, 512)
	if err := netpkt.SerializeLayers(sbuf, []byte("ping"),
		&netpkt.VXLAN{VNI: 100},
		&netpkt.Ethernet{EtherType: netpkt.EtherTypeIPv4},
		&netpkt.IPv4{TTL: 64, Protocol: netpkt.IPProtocolUDP,
			SrcIP: netip.MustParseAddr("192.168.10.2"),
			DstIP: netip.MustParseAddr("192.168.10.3")},
		&netpkt.UDP{SrcPort: 5000, DstPort: 6000},
	); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(sbuf.Bytes()); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 2048)
	if _, err := nc.Read(buf); err != nil {
		t.Fatalf("NC socket received nothing: %v", err)
	}

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", bound, path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(ctype, "text/plain") {
		t.Fatalf("content type = %q", ctype)
	}
	for _, want := range []string{
		`sailfish_gw_forwarded_total{node="xgwh-0"} 1`,
		`sailfish_gw_fallback_ratio{node="xgwh-0"} 0`,
		`reason="parse_error"`,
		`reason="no_nc"`,
		`sailfish_gw_stage_latency_ns_bucket{stage="parse",le="+Inf"} 1`,
		`sailfish_gw_stage_latency_ns_count{stage="pipeline"} 1`,
		`sailfish_gw_stage_latency_ns_count{stage="rewrite"} 1`,
		`sailfish_x86_forwarded_total{node="xgw86-0"} 0`,
		`sailfish_snat_sessions`,
		`sailfish_snat_replication_lag_seconds`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
	if hz, _ := get("/healthz"); hz != "ok\n" {
		t.Fatalf("/healthz = %q", hz)
	}
	// The SNAT survivability view is served even with no sessions: the
	// embedded node's service pair reports primary side and empty shards.
	if body, _ := get("/snat"); !strings.Contains(body, `"onBackup":false`) ||
		!strings.Contains(body, `"shards"`) {
		t.Fatalf("/snat = %s", body)
	}

	// waitFor polls an endpoint until every wanted substring shows up —
	// the UDP datagrams above are processed asynchronously by the serve
	// loop, so the observability planes lag the writes slightly.
	waitFor := func(path string, wants ...string) string {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for {
			body, _ := get(path)
			missing := ""
			for _, w := range wants {
				if !strings.Contains(body, w) {
					missing = w
					break
				}
			}
			if missing == "" {
				return body
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never showed %q; last body:\n%s", path, missing, body)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Install a Vtrace rule for the tenant, then send a second forward
	// packet so the gateway emits a postcard for it.
	if body, _ := get("/vtrace/rule?vni=100&dst=192.168.10.0/24"); !strings.Contains(body, `"dst":"192.168.10.0/24"`) {
		t.Fatalf("/vtrace/rule = %s", body)
	}
	if _, err := client.Write(sbuf.Bytes()); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := nc.Read(buf); err != nil {
		t.Fatalf("NC socket did not receive the traced packet: %v", err)
	}

	// Two always-on drop events: a malformed datagram dies in the gateway
	// parser, and an unknown tenant routes to the (empty) software table.
	if _, err := client.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := netpkt.SerializeLayers(sbuf, []byte("stray"),
		&netpkt.VXLAN{VNI: 999},
		&netpkt.Ethernet{EtherType: netpkt.EtherTypeIPv4},
		&netpkt.IPv4{TTL: 64, Protocol: netpkt.IPProtocolUDP,
			SrcIP: netip.MustParseAddr("192.168.10.2"),
			DstIP: netip.MustParseAddr("192.168.10.3")},
		&netpkt.UDP{SrcPort: 5000, DstPort: 6000},
	); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(sbuf.Bytes()); err != nil {
		t.Fatal(err)
	}

	waitFor("/debug/trace/drops",
		`{"stage":"gateway","reason":"parse_error","count":1}`,
		`{"stage":"fallback","reason":"no_route","count":1}`)
	waitFor("/debug/trace?drops=1",
		`"device":"xgwh-0"`, `"verdict":"drop"`, `"reason":"parse_error"`,
		`"device":"xgw86-0"`, `"reason":"no_route"`)
	if body, _ := get("/debug/trace?drops=1&vni=999"); !strings.Contains(body, `"reason":"no_route"`) ||
		strings.Contains(body, "parse_error") {
		t.Fatalf("/debug/trace vni filter broken:\n%s", body)
	}
	if _, code := getStatus(t, bound, "/debug/trace?flow=zzz"); code != http.StatusBadRequest {
		t.Fatalf("bad flow filter accepted (status %d)", code)
	}

	// Heavy hitters: three parseable datagrams were observed (the malformed
	// one never passes the front parse), and the forward flow's route entry
	// qualifies for residency.
	waitFor("/topk",
		`"totalPackets":3`, `"dip":"192.168.10.3"`, `"vni":100`)

	// Vtrace: the traced flow's path shows the forward postcard, and the
	// rule install is listed.
	waitFor("/vtrace",
		`{"vni":100,"dst":"192.168.10.0/24"}`,
		`"src":"192.168.10.2"`, `"action":"forward"`, `"device":"xgwh-0"`)
}

// getStatus fetches a path and returns body + status code without failing
// on non-200s.
func getStatus(t *testing.T, bound net.Addr, path string) (string, int) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", bound, path))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.StatusCode
}

// The /topk coverage parameter is a fraction: out-of-range and non-numeric
// poison values (NaN passes neither `< 0` nor `> 1`) must be rejected
// before they reach the tracker.
func TestTopKCoverageValidation(t *testing.T) {
	fc := fileConfig{
		GatewayIP: "10.255.0.1",
		Listen:    "127.0.0.1:0",
	}
	srv, err := newServer(fc)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.conn.Close()
	bound, stop, err := startAdmin("127.0.0.1:0", srv, srv.registerMetrics())
	if err != nil {
		t.Fatal(err)
	}
	defer stop() //nolint:errcheck

	for _, bad := range []string{"NaN", "nan", "-0.1", "1.5", "bogus"} {
		if body, code := getStatus(t, bound, "/topk?coverage="+bad); code != http.StatusBadRequest {
			t.Fatalf("coverage=%s accepted (status %d): %s", bad, code, body)
		}
	}
	for _, good := range []string{"0", "0.95", "1"} {
		if body, code := getStatus(t, bound, "/topk?coverage="+good); code != http.StatusOK {
			t.Fatalf("coverage=%s rejected (status %d): %s", good, code, body)
		}
	}
}

// Single-box residency end to end: a software tenant's traffic first
// completes on the XGW-x86 path, the placement loop promotes the hot key
// into the hardware gateway, and the /placement endpoint plus the loop's
// metrics expose the move.
func TestAdminPlacementEndpoint(t *testing.T) {
	nc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	fc := fileConfig{
		GatewayIP: "10.255.0.1",
		Listen:    "127.0.0.1:0",
		Underlay:  map[string]string{"10.1.1.12": nc.LocalAddr().String()},
		SoftwareTenants: []tenantConfig{{
			VNI: 200, Prefix: "192.168.20.0/24",
			VMs: map[string]string{"192.168.20.3": "10.1.1.12"},
		}},
		Placement: &placementConfig{
			IntervalMs:   20,
			EntryBudget:  16,
			PromoteShare: 0.001,
			// Long enough that the promoted key cannot be demoted while
			// the test polls.
			MinResidencyMs: 60_000,
		},
	}
	srv, err := newServer(fc)
	if err != nil {
		t.Fatal(err)
	}
	if srv.loop == nil {
		t.Fatal("placement stanza did not enable the loop")
	}
	bound, stop, err := startAdmin("127.0.0.1:0", srv, srv.registerMetrics())
	if err != nil {
		t.Fatal(err)
	}
	defer stop() //nolint:errcheck
	served := make(chan struct{})
	go func() {
		defer close(served)
		srv.serve() //nolint:errcheck
	}()
	defer func() { srv.conn.Close(); <-served }()

	client, err := net.DialUDP("udp", nil, srv.conn.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	sbuf := netpkt.NewSerializeBuffer(64, 512)
	if err := netpkt.SerializeLayers(sbuf, []byte("hot"),
		&netpkt.VXLAN{VNI: 200},
		&netpkt.Ethernet{EtherType: netpkt.EtherTypeIPv4},
		&netpkt.IPv4{TTL: 64, Protocol: netpkt.IPProtocolUDP,
			SrcIP: netip.MustParseAddr("192.168.20.2"),
			DstIP: netip.MustParseAddr("192.168.20.3")},
		&netpkt.UDP{SrcPort: 5000, DstPort: 6000},
	); err != nil {
		t.Fatal(err)
	}
	send := func() {
		t.Helper()
		if _, err := client.Write(sbuf.Bytes()); err != nil {
			t.Fatal(err)
		}
		nc.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 2048)
		if _, err := nc.Read(buf); err != nil {
			t.Fatalf("NC socket received nothing: %v", err)
		}
	}

	// Before any cycle, the endpoint reports the loop idle but enabled, and
	// the software path serves the tenant.
	if body, code := getStatus(t, bound, "/placement"); code != http.StatusOK ||
		!strings.Contains(body, `"enabled":true`) {
		t.Fatalf("/placement = %d: %s", code, body)
	}
	send()

	// Keep traffic flowing so cycles fire (they run between datagrams) and
	// the hot key stays hot across measurement windows.
	deadline := time.Now().Add(5 * time.Second)
	for {
		send()
		body, code := getStatus(t, bound, "/placement")
		if code != http.StatusOK {
			t.Fatalf("/placement status %d", code)
		}
		if strings.Contains(body, `"dip":"192.168.20.3"`) && strings.Contains(body, `"vni":200`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/placement never showed the promoted key; last body:\n%s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The promotion is visible in hardware (route + VM installed) and in
	// the loop's registered metrics.
	if srv.gw.RouteCount() == 0 || srv.gw.VMCount() == 0 {
		t.Fatalf("promotion did not install hardware entries (routes %d, vms %d)",
			srv.gw.RouteCount(), srv.gw.VMCount())
	}
	body, code := getStatus(t, bound, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"sailfish_placement_promotions_total 1",
		"sailfish_placement_resident_keys 1",
		"sailfish_placement_resident_entries 2",
		"sailfish_placement_desired_entries 2",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
}
