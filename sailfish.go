// Package sailfish is the public API of the Sailfish reproduction: a
// cloud-scale multi-tenant multi-service gateway accelerated by programmable
// switches (Pan et al., SIGCOMM 2021), rebuilt as a Go library.
//
// A Deployment is one cloud region: XGW-H hardware-gateway clusters (each
// with a 1:1 hot-standby backup) behind a VNI-steering ECMP front end, an
// XGW-x86 software pool for fallback and stateful services, an optional
// SmartNIC/DPU middle tier (Options.DPUDevices) that absorbs warm-entry
// misses before they reach x86, and a central controller that places
// tenants by horizontal table splitting.
//
//	d := sailfish.NewDeployment(sailfish.Options{Clusters: 2, FallbackNodes: 1})
//	d.AddTenant(sailfish.Tenant{
//		VNI:    100,
//		Prefix: netip.MustParsePrefix("192.168.10.0/24"),
//		VMs:    map[netip.Addr]netip.Addr{vmIP: ncIP},
//	})
//	res, _ := d.DeliverVXLAN(rawPacket)
//
// The subsystems are importable directly for finer control:
// internal/xgwh (the gateway and its table-compression planner),
// internal/tofino (the chip model), internal/alpm, internal/digest,
// internal/xgw86, internal/controller, internal/sim.
package sailfish

import (
	"fmt"
	"net/netip"
	"time"

	"sailfish/internal/cluster"
	"sailfish/internal/controller"
	"sailfish/internal/netpkt"
	"sailfish/internal/probe"
	"sailfish/internal/tables"
	"sailfish/internal/xgwh"
)

// Re-exported identifiers so common use needs only this package.
type (
	// VNI is a 24-bit VXLAN network identifier — one VPC.
	VNI = netpkt.VNI
	// Route is a VXLAN routing entry's action.
	Route = tables.Route
	// ACLRule is a tenant five-tuple filter.
	ACLRule = tables.ACLRule
	// Result is the outcome of one packet through the region.
	Result = cluster.Result
	// BatchResult is one packet's outcome within a batched delivery.
	BatchResult = cluster.BatchResult
)

// Route scopes (Fig. 2).
const (
	ScopeLocal   = tables.ScopeLocal
	ScopePeer    = tables.ScopePeer
	ScopeRemote  = tables.ScopeRemote
	ScopeService = tables.ScopeService
)

// Gateway actions.
const (
	ActionForward  = xgwh.ActionForward
	ActionFallback = xgwh.ActionFallback
	ActionDrop     = xgwh.ActionDrop
)

// Options sizes a Deployment.
type Options struct {
	// Clusters is the initial XGW-H cluster count (each 1:1 backed up).
	Clusters int
	// NodesPerCluster is the ECMP width of each cluster.
	NodesPerCluster int
	// FallbackNodes is the XGW-x86 pool size.
	FallbackNodes int
	// EntryCapacity is the per-node entry budget; 0 uses the Table 3
	// calibrated default.
	EntryCapacity int
	// SafeWaterLevel gates tenant placement (default 0.8).
	SafeWaterLevel float64
	// DPUDevices attaches a SmartNIC/DPU middle tier of that many devices
	// between XGW-H and the x86 pool; 0 keeps the two-tier region.
	DPUDevices int
	// DPUEntryCapacity overrides the DPU pool's entry budget; 0 uses the
	// xgwdpu default when DPUDevices > 0.
	DPUEntryCapacity int
}

// Tenant describes one VPC to install.
type Tenant struct {
	VNI    VNI
	Prefix netip.Prefix
	// VMs maps VM overlay address → hosting NC underlay address.
	VMs map[netip.Addr]netip.Addr
	// Peers lists destination prefixes reachable through VPC peering.
	Peers []Peering
	// NeedsSNAT marks the tenant's VNI as a software-service tag: its
	// Internet-bound traffic takes the XGW-x86 SNAT path.
	NeedsSNAT bool
}

// Peering connects a tenant to a peer VPC for a destination prefix.
type Peering struct {
	Prefix  netip.Prefix
	PeerVNI VNI
}

// Deployment is one region under management.
type Deployment struct {
	Region     *cluster.Region
	Controller *controller.Controller
}

// NewDeployment builds a region and its controller.
func NewDeployment(o Options) *Deployment {
	cfg := cluster.DefaultConfig()
	if o.NodesPerCluster > 0 {
		cfg.NodesPerCluster = o.NodesPerCluster
	}
	if o.EntryCapacity > 0 {
		cfg.EntryCapacity = o.EntryCapacity
	}
	if o.DPUDevices > 0 {
		cfg.DPUDevices = o.DPUDevices
		cfg.DPUEntryCapacity = o.DPUEntryCapacity
	}
	if o.Clusters <= 0 {
		o.Clusters = 1
	}
	region := cluster.NewRegion(cfg, o.Clusters, o.FallbackNodes)
	ctlCfg := controller.DefaultConfig()
	if o.SafeWaterLevel > 0 {
		ctlCfg.SafeWaterLevel = o.SafeWaterLevel
	}
	return &Deployment{
		Region:     region,
		Controller: controller.New(ctlCfg, region),
	}
}

// AddTenant places and installs a tenant: the controller picks a cluster
// (horizontal table splitting), downloads entries to every node including
// backups, verifies consistency, and programs front-end steering. It
// returns the chosen cluster id.
func (d *Deployment) AddTenant(t Tenant) (int, error) {
	te := controller.TenantEntries{VNI: t.VNI, ServiceVNI: t.NeedsSNAT}
	te.Routes = append(te.Routes, controller.RouteEntry{
		VNI: t.VNI, Prefix: t.Prefix, Route: Route{Scope: ScopeLocal},
	})
	for _, p := range t.Peers {
		te.Routes = append(te.Routes, controller.RouteEntry{
			VNI: t.VNI, Prefix: p.Prefix,
			Route: Route{Scope: ScopePeer, NextHopVNI: p.PeerVNI},
		})
	}
	for vm, nc := range t.VMs {
		te.VMs = append(te.VMs, controller.VMEntry{VNI: t.VNI, VM: vm, NC: nc})
		// The software pool also learns the mapping so SNAT responses
		// can find the VM (Fig. 11).
		for _, fb := range d.Region.Fallback {
			fb.VMNC.Insert(t.VNI, vm, nc)
		}
	}
	id, err := d.Controller.PlaceTenant(te)
	if err != nil {
		return 0, err
	}
	if rep := d.Controller.CheckConsistency(id); !rep.Consistent {
		return id, fmt.Errorf("sailfish: post-install consistency check failed on %v", rep.Mismatches)
	}
	return id, nil
}

// AddTenantSoftware places a tenant in residency mode: the XGW-x86 pool
// receives the full desired state (the table of record) and hardware stays
// empty until a placement loop promotes hot entries (§5's 95/5 split). The
// tenant's traffic initially completes entirely on the software path.
func (d *Deployment) AddTenantSoftware(t Tenant) (int, error) {
	te := controller.TenantEntries{VNI: t.VNI, ServiceVNI: t.NeedsSNAT}
	te.Routes = append(te.Routes, controller.RouteEntry{
		VNI: t.VNI, Prefix: t.Prefix, Route: Route{Scope: ScopeLocal},
	})
	for _, p := range t.Peers {
		te.Routes = append(te.Routes, controller.RouteEntry{
			VNI: t.VNI, Prefix: p.Prefix,
			Route: Route{Scope: ScopePeer, NextHopVNI: p.PeerVNI},
		})
	}
	for vm, nc := range t.VMs {
		te.VMs = append(te.VMs, controller.VMEntry{VNI: t.VNI, VM: vm, NC: nc})
	}
	return d.Controller.PlaceTenantSoftware(te)
}

// DeliverVXLAN pushes one wire packet through the region using the wall
// clock; use DeliverVXLANAt from simulations.
func (d *Deployment) DeliverVXLAN(raw []byte) (Result, error) {
	return d.Region.ProcessPacket(raw, time.Now())
}

// DeliverVXLANAt pushes one wire packet at an explicit instant.
func (d *Deployment) DeliverVXLANAt(raw []byte, now time.Time) (Result, error) {
	return d.Region.ProcessPacket(raw, now)
}

// DeliverVXLANBatchAt pushes a batch of wire packets at an explicit
// instant, appending one BatchResult per packet to out; pass the previous
// call's slice as out[:0] to keep the steady state allocation-free.
func (d *Deployment) DeliverVXLANBatchAt(raws [][]byte, now time.Time, out []BatchResult) []BatchResult {
	return d.Region.ProcessBatch(raws, now, out)
}

// BuildVXLAN constructs a VXLAN-encapsulated packet for testing and
// examples: srcVM→dstVM inside vni, entering at the region VIP.
func BuildVXLAN(vni VNI, srcVM, dstVM netip.Addr, proto netpkt.IPProtocol, srcPort, dstPort uint16, payload []byte) ([]byte, error) {
	spec := netpkt.BuildSpec{
		VNI:      vni,
		OuterSrc: netip.MustParseAddr("10.1.1.1"),
		OuterDst: netip.MustParseAddr("10.255.0.1"),
		InnerSrc: srcVM, InnerDst: dstVM,
		Proto: proto, SrcPort: srcPort, DstPort: dstPort,
		Payload: payload,
	}
	b := netpkt.NewSerializeBuffer(128, 256+len(payload))
	raw, err := spec.Build(b)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(raw))
	copy(out, raw)
	return out, nil
}

// Protocols for BuildVXLAN.
const (
	ProtoTCP = netpkt.IPProtocolTCP
	ProtoUDP = netpkt.IPProtocolUDP
)

// Commission runs the §6.1 cluster-construction workflow on a cluster:
// consistency check against controller intent, probe packets on every node
// (main and backup), and admission of user traffic only when both pass.
// The spec names an installed tenant whose entries the probes exercise.
func (d *Deployment) Commission(clusterID int, spec probe.Spec) (controller.CommissionReport, error) {
	return d.Controller.Commission(clusterID, spec)
}

// ProbeSpecFor builds a probe spec from an installed tenant: the first VM
// is the probe target, the second (if any) the source.
func ProbeSpecFor(t Tenant) probe.Spec {
	s := probe.Spec{LocalVNI: t.VNI, UnknownVNI: 0xFFFFFE}
	first := true
	for vm, nc := range t.VMs {
		if first {
			s.LocalVM, s.LocalNC = vm, nc
			s.LocalSrc = vm.Prev() // any in-prefix source works
			first = false
		}
	}
	return s
}

// Stats summarizes the deployment.
type Stats struct {
	Clusters    int
	WaterLevels []float64
	Region      cluster.RegionStats
}

// Stats returns a snapshot.
func (d *Deployment) Stats() Stats {
	return Stats{
		Clusters:    len(d.Region.Clusters),
		WaterLevels: d.Controller.WaterLevels(),
		Region:      d.Region.Stats(),
	}
}
