package sailfish

import (
	"net/netip"
	"time"
)

// Small aliases/values shared by the root benchmarks.

type netipAddr = netip.Addr

var benchTime = time.Unix(0, 0)

func mustAddr(s string) netip.Addr     { return netip.MustParseAddr(s) }
func mustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }
